package objmig

// The cluster health engine: a per-node background daemon that samples
// the node's own telemetry on a fixed tick, evaluates windowed SLOs
// over it (internal/health) and classifies the node healthy, degraded
// or critical. The verdict is cheap to read (one atomic), rides the
// existing load-gossip fast path to every peer (wire.NodeLoad.Health),
// and feeds back into placement: degraded nodes score at a fraction of
// their weight, critical nodes are vetoed outright — both remotely (a
// peer stops electing them) and locally (admitAndReserve refuses
// inbound migrations while critical).
//
// Alongside the evaluator runs the black-box flight recorder: a
// bounded ring of recent events, traced migration spans and health
// ticks. The moment the node transitions *upward* (healthy→degraded,
// degraded→critical, healthy→critical) the ring is frozen and
// serialised with the offending window's numbers — the forensic record
// exists before anyone asks for it. Operators can also dump on demand
// (Node.DumpFlightRecorder, POST /debug/flightrec, objmig-admin dump).
//
// See docs/health.md for the signal table, threshold semantics and the
// runbook.

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"objmig/internal/health"
	"objmig/internal/telemetry"
)

// HealthState classifies a node. The numeric values ride the load
// gossip (wire.NodeLoad.Health) and the objmig_node_health gauge, so
// they are part of the wire surface: healthy < degraded < critical.
type HealthState uint8

const (
	// HealthHealthy: every SLO signal inside its warning bound.
	HealthHealthy HealthState = iota
	// HealthDegraded: at least one signal breached its warning bound
	// for RaiseAfter consecutive ticks. Placement discounts the node;
	// job planners stop electing it as a receiver.
	HealthDegraded
	// HealthCritical: a signal breached its critical bound. Placement
	// vetoes the node, admission refuses inbound migrations, and
	// rebalance planners drain it with priority.
	HealthCritical
)

// String names the state as it appears in events, dumps and scrapes.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// HealthBound is one signal's SLO thresholds. The zero value selects
// the documented default for that signal; a negative Warn disables the
// signal entirely. A windowed value >= Warn argues for degraded,
// >= Crit for critical (Crit <= 0 disables only the critical level).
type HealthBound struct {
	Warn int64
	Crit int64
}

// HealthConfig tunes the health engine (see EnableHealth). The zero
// value selects the documented defaults throughout.
type HealthConfig struct {
	// Tick is the sampling period. Default 1s.
	Tick time.Duration
	// Window is the sliding evaluation window: every verdict is
	// computed over the telemetry delta between now and Window ago,
	// so a burst ages out instead of poisoning the p99 forever.
	// Default 30s; rounded to whole ticks, minimum one tick.
	Window time.Duration
	// RaiseAfter is how many consecutive breaching ticks promote the
	// state (hysteresis against flapping). Default 2.
	RaiseAfter int
	// ClearAfter is how many consecutive clean ticks demote it.
	// Default 3.
	ClearAfter int

	// Latency signals, thresholds in microseconds against the
	// window's p99.
	InvokeLocalP99    HealthBound // local method execution; default 100ms / 1s
	InvokeRemoteP99   HealthBound // remote invoke round trip; default 250ms / 2s
	ChaseP99          HealthBound // whole location chase; default 250ms / 2s
	MigrationPhaseP99 HealthBound // any migration phase; default 1s / 10s

	// Rate signals, thresholds in events per window.
	StreamAborts     HealthBound // aborted staging sessions; default 4 / 16
	PauseExpiries    HealthBound // pause leases expired; default 2 / 8
	ChasesOverBudget HealthBound // chases past the hop budget; default 16 / 64
	EventsDropped    HealthBound // observer events shed; default 64 / 1024

	// FlightRecorderSize caps the flight-recorder ring (entries).
	// Default 1024; negative disables the recorder (the evaluator
	// still runs).
	FlightRecorderSize int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.Window <= 0 {
		c.Window = 30 * time.Second
	}
	if c.RaiseAfter <= 0 {
		c.RaiseAfter = 2
	}
	if c.ClearAfter <= 0 {
		c.ClearAfter = 3
	}
	if c.FlightRecorderSize == 0 {
		c.FlightRecorderSize = health.DefaultRecorderSize
	}
	def := func(b *HealthBound, warn, crit int64) {
		if b.Warn < 0 {
			*b = HealthBound{}
			return
		}
		if b.Warn == 0 {
			b.Warn = warn
		}
		if b.Crit == 0 {
			b.Crit = crit
		}
		if b.Crit < 0 {
			b.Crit = 0
		}
	}
	def(&c.InvokeLocalP99, 100_000, 1_000_000)
	def(&c.InvokeRemoteP99, 250_000, 2_000_000)
	def(&c.ChaseP99, 250_000, 2_000_000)
	def(&c.MigrationPhaseP99, 1_000_000, 10_000_000)
	def(&c.StreamAborts, 4, 16)
	def(&c.PauseExpiries, 2, 8)
	def(&c.ChasesOverBudget, 16, 64)
	def(&c.EventsDropped, 64, 1024)
	return c
}

// evalConfig lowers the public config into the evaluator's form. Call
// on a withDefaults result only.
func (c HealthConfig) evalConfig() health.Config {
	ticks := int(c.Window / c.Tick)
	if c.Window%c.Tick != 0 {
		ticks++
	}
	ec := health.Config{
		// +1 ring slots: a window of N ticks needs N+1 edges.
		WindowTicks: ticks + 1,
		RaiseAfter:  c.RaiseAfter,
		ClearAfter:  c.ClearAfter,
	}
	th := func(b HealthBound) health.Threshold { return health.Threshold{Warn: b.Warn, Crit: b.Crit} }
	ec.Thresholds[health.SigInvokeLocalP99] = th(c.InvokeLocalP99)
	ec.Thresholds[health.SigInvokeRemoteP99] = th(c.InvokeRemoteP99)
	ec.Thresholds[health.SigChaseP99] = th(c.ChaseP99)
	ec.Thresholds[health.SigMigrationPhaseP99] = th(c.MigrationPhaseP99)
	ec.Thresholds[health.SigStreamAborts] = th(c.StreamAborts)
	ec.Thresholds[health.SigPauseExpiries] = th(c.PauseExpiries)
	ec.Thresholds[health.SigChasesOverBudget] = th(c.ChasesOverBudget)
	ec.Thresholds[health.SigEventsDropped] = th(c.EventsDropped)
	return ec
}

// healthDaemon evaluates the node's health on a fixed tick. It owns
// the evaluator (single-goroutine, no locking on the hot path) and
// publishes only through atomics: n.healthState for the verdict, the
// objmig_node_health gauge for scrapes, n.lastDump for the frozen
// automatic dump.
type healthDaemon struct {
	node *Node
	cfg  HealthConfig
	eval *health.Evaluator

	// last is the most recent verdict, kept for manual dumps (the
	// daemon goroutine owns eval; readers get a copy via verdict()).
	lastMu sync.Mutex
	last   health.Verdict

	stop chan struct{}
	done chan struct{}
}

func (d *healthDaemon) setVerdict(v health.Verdict) {
	d.lastMu.Lock()
	d.last = v
	d.lastMu.Unlock()
}

func (d *healthDaemon) verdict() health.Verdict {
	d.lastMu.Lock()
	defer d.lastMu.Unlock()
	return d.last
}

// EnableHealth starts the health engine. Fails if it is already
// running or the node is closed. The engine needs no peers and no
// other daemon — but its verdict only reaches the rest of the cluster
// through the load gossip, so pair it with EnablePlacement for
// health-aware placement.
func (n *Node) EnableHealth(cfg HealthConfig) error {
	if n.closed.Load() {
		return ErrClosed
	}
	cfg = cfg.withDefaults()
	n.apMu.Lock()
	defer n.apMu.Unlock()
	if n.hl != nil {
		return fmt.Errorf("objmig: health engine already enabled on %s", n.id)
	}
	d := &healthDaemon{
		node: n,
		cfg:  cfg,
		eval: health.NewEvaluator(cfg.evalConfig()),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.FlightRecorderSize > 0 {
		n.tel.flightRec.Store(health.NewRecorder(cfg.FlightRecorderSize))
	}
	n.hl = d
	n.spawn(d.run)
	return nil
}

// DisableHealth stops the engine and waits for its goroutine. The
// node's state resets to healthy — a stopped evaluator must not keep
// advertising stale sickness — and the flight recorder detaches.
// Idempotent; Close calls it.
func (n *Node) DisableHealth() {
	n.apMu.Lock()
	d := n.hl
	n.hl = nil
	n.apMu.Unlock()
	if d == nil {
		return
	}
	close(d.stop)
	<-d.done
	n.healthState.Store(uint32(HealthHealthy))
	n.tel.nodeHealth.Set(0)
	n.tel.flightRec.Store(nil)
}

// HealthEnabled reports whether the engine is running.
func (n *Node) HealthEnabled() bool {
	n.apMu.Lock()
	defer n.apMu.Unlock()
	return n.hl != nil
}

// Health returns the node's current health classification. Always
// HealthHealthy while the engine is disabled.
func (n *Node) Health() HealthState {
	return HealthState(n.healthState.Load())
}

// DumpFlightRecorder freezes the flight-recorder ring right now and
// returns it serialised as JSON, stamped with the latest verdict and
// reason "manual". Fails when the engine is off or the recorder was
// disabled (FlightRecorderSize < 0).
func (n *Node) DumpFlightRecorder() ([]byte, error) {
	n.apMu.Lock()
	d := n.hl
	n.apMu.Unlock()
	if d == nil {
		return nil, fmt.Errorf("objmig: health engine not enabled on %s", n.id)
	}
	r := n.tel.flightRec.Load()
	if r == nil {
		return nil, fmt.Errorf("objmig: flight recorder disabled on %s", n.id)
	}
	n.stats.healthDumps.Add(1)
	return r.Dump(string(n.id), "manual", d.verdict()).JSON(), nil
}

// LastFlightDump returns the most recent automatic dump — the JSON the
// engine froze when the node last transitioned upward — or nil if no
// transition has fired one yet.
func (n *Node) LastFlightDump() []byte {
	p := n.lastDump.Load()
	if p == nil {
		return nil
	}
	return *p
}

func (d *healthDaemon) run() {
	defer close(d.done)
	t := time.NewTicker(d.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.tick()
		}
	}
}

// tick takes one telemetry sample, evaluates it and publishes the
// verdict. Sampling reads only lock-free handles; the single
// allocation-sensitive path (health.Evaluator.Tick) is covered by
// BenchmarkHealthTick's 0 allocs/op budget.
func (d *healthDaemon) tick() {
	n := d.node
	s := health.Sample{At: time.Now().UnixNano()}
	s.Hists[health.SigInvokeLocalP99] = n.tel.invokeLocal.Snapshot()
	s.Hists[health.SigInvokeRemoteP99] = n.tel.invokeRemote.Snapshot()
	s.Hists[health.SigChaseP99] = n.tel.chaseLat.Snapshot()
	// The migration-phase signal watches every phase at once: the
	// seven phase histograms merge into one distribution, so a stall
	// in any phase drags the merged p99.
	var merged telemetry.HistSnapshot
	for _, ph := range n.tel.phase {
		snap := ph.Snapshot()
		for b := range snap.Counts {
			merged.Counts[b] += snap.Counts[b]
		}
		merged.Sum += snap.Sum
		merged.Total += snap.Total
	}
	s.Hists[health.SigMigrationPhaseP99] = merged
	s.Counters[health.SigStreamAborts-health.NumHists] = n.stats.streamAborts.Load()
	s.Counters[health.SigPauseExpiries-health.NumHists] = n.stats.pauseLeasesExpired.Load()
	s.Counters[health.SigChasesOverBudget-health.NumHists] = n.stats.chasesOverBudget.Load()
	s.Counters[health.SigEventsDropped-health.NumHists] = n.eventsDropped()

	v := d.eval.Tick(s)
	d.setVerdict(v)
	n.healthState.Store(uint32(v.State))
	n.tel.nodeHealth.Set(int64(v.State))
	n.stats.healthTicks.Add(1)
	if r := n.tel.flightRec.Load(); r != nil {
		r.Record(health.Entry{
			At: s.At, Kind: health.EntryHealth,
			Label: v.State.String(), Node: string(n.id),
			Values: [4]int64{int64(v.Level), int64(v.Worst), v.Values[v.Worst], int64(v.Prev)},
		})
	}
	if !v.Changed {
		return
	}
	switch HealthState(v.State) {
	case HealthDegraded:
		n.stats.healthDegraded.Add(1)
	case HealthCritical:
		n.stats.healthCritical.Add(1)
	}
	if v.State > v.Prev {
		// Upward transition: freeze the black box before anything
		// else overwrites it. The dump carries the verdict that
		// triggered it — the offending window's numbers.
		if r := n.tel.flightRec.Load(); r != nil {
			raw := r.Dump(string(n.id), "transition", v).JSON()
			n.lastDump.Store(&raw)
			n.stats.healthDumps.Add(1)
		}
	}
	n.emit(Event{Kind: EventHealth, Outcome: v.State.String(), Hops: int(v.Prev)})
}

// serveCluster renders the cluster as this node sees it: its own row
// plus one row per fresh peer sample in the placement view, with the
// gossiped health state, utilisation and sample staleness. No
// collection RPC — everything here already arrived on the gossip.
func (n *Node) serveCluster(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	type row struct {
		node          NodeID
		health        HealthState
		objs, bytes   int64
		cap, capBytes int64
		age           time.Duration
		self          bool
	}
	objs, bytes := n.store.HostedStats()
	rows := []row{{
		node: n.id, health: n.Health(),
		objs: objs, bytes: bytes,
		cap: n.capacity, capBytes: n.capBytes,
		self: true,
	}}
	if d := n.placementDaemonRef(); d != nil {
		ages, _ := d.view.Ages(n.id)
		byNode := make(map[NodeID]time.Duration, len(ages))
		for _, pa := range ages {
			byNode[pa.Node] = pa.Age
		}
		for _, s := range d.view.Snapshot() {
			if s.Node == n.id {
				continue
			}
			rows = append(rows, row{
				node: s.Node, health: HealthState(s.Health),
				objs: s.Objects, bytes: s.Bytes,
				cap: s.Capacity, capBytes: s.CapBytes,
				age: byNode[s.Node],
			})
		}
	}
	fmt.Fprintf(w, "node %s: cluster view, %d nodes\n", n.id, len(rows))
	fmt.Fprintf(w, "%-12s %-10s %8s %12s %8s %10s %8s\n",
		"NODE", "HEALTH", "OBJECTS", "BYTES", "UTIL", "AGE", "")
	for _, r := range rows {
		util := 0.0
		if r.cap > 0 {
			util = float64(r.objs) / float64(r.cap)
		}
		if r.capBytes > 0 {
			if bu := float64(r.bytes) / float64(r.capBytes); bu > util {
				util = bu
			}
		}
		tag := ""
		if r.self {
			tag = "(self)"
		}
		fmt.Fprintf(w, "%-12s %-10s %8d %12d %7.2f%% %10s %8s\n",
			r.node, r.health, r.objs, r.bytes, util*100,
			r.age.Truncate(time.Millisecond), tag)
	}
}

// serveFlightrec is the flight recorder's HTTP face: POST freezes the
// ring and returns the dump (objmig-admin dump wraps it); GET returns
// the last automatic dump, 404 when no transition has fired one.
func (n *Node) serveFlightrec(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		raw, err := n.DumpFlightRecorder()
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(raw)
	case http.MethodGet:
		raw := n.LastFlightDump()
		if raw == nil {
			http.Error(w, "no automatic dump recorded", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_, _ = w.Write(raw)
	default:
		http.Error(w, "GET (last automatic dump) or POST (dump now)", http.StatusMethodNotAllowed)
	}
}
