#!/usr/bin/env bash
# check-docs.sh — keep docs/ and README honest.
#
# Two checks, both grep-based and dependency-free:
#
#  1. Link check: every relative markdown link in docs/*.md and
#     README.md must point at a file (or file#anchor) that exists.
#  2. Symbol check: every backticked Go identifier mentioned in the
#     docs — qualified names like `wire.Snapshot` / `Node.Migrate`,
#     multi-hump exported CamelCase names like `AutopilotConfig`, and
#     unexported camelCase names like `tagGob` (wire-format.md
#     documents byte-level internals, so internal identifiers are
#     load-bearing documentation too) — must still exist somewhere in
#     the repo's .go files.
#
# Run from the repository root: ./scripts/check-docs.sh
set -u
cd "$(dirname "$0")/.."

fail=0
docs=(README.md docs/*.md)

# --- 1. Relative link check -------------------------------------------------
# Fenced code blocks are stripped first: Go generics (`Call[int,
# int](ctx, …)`) would otherwise parse as markdown links.
strip_fences() { awk '/^```/{infence=!infence; next} !infence' "$1"; }

for f in "${docs[@]}"; do
  # Markdown links: [text](target). Skip absolute URLs and pure anchors.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    base_dir=$(dirname "$f")
    if [ ! -e "$path" ] && [ ! -e "$base_dir/$path" ]; then
      echo "BROKEN LINK: $f -> $target"
      fail=1
    fi
  done < <(strip_fences "$f" | grep -o '\[[^]]*\]([^)]*)' | sed 's/.*(\(.*\))/\1/')
done

# --- 2. Exported-symbol check ----------------------------------------------
# Collect backticked tokens that look like Go identifiers.
symbols=$(grep -ho '`[A-Za-z][A-Za-z0-9_.]*`' "${docs[@]}" | tr -d '`' | sort -u)

for sym in $symbols; do
  case "$sym" in
    # Qualified name: pkg.Ident or Type.Method — check the part after
    # the last dot (must look exported).
    *.*)
      ident="${sym##*.}"
      case "$ident" in
        [A-Z]*) ;;
        *) continue ;;
      esac
      ;;
    # Bare name: check exported CamelCase with at least two humps (so
    # `KiB`, `Go`, `TCP` and prose words never false-positive), and
    # unexported camelCase with a hump (`tagGob`, `dirRequest`,
    # `maxFrame`) — all-lowercase words are prose and skipped.
    *)
      if ! echo "$sym" | grep -Eq '^[A-Z][a-z0-9]{2,}[A-Z][A-Za-z0-9]*$' &&
        ! echo "$sym" | grep -Eq '^[a-z][a-z0-9]+[A-Z][A-Za-z0-9]*$'; then
        continue
      fi
      ident="$sym"
      ;;
  esac
  if ! grep -rq --include='*.go' "$ident" .; then
    echo "STALE SYMBOL: \`$sym\` named in docs but $ident not found in any .go file"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
