package objmig

// Cluster placement: the live runtime's glue around the
// internal/placement engine. Three pieces live here:
//
//   - The load sampler and gossip. Each placement-enabled node
//     periodically samples its own load (hosted objects, resident
//     bytes, an EWMA-smoothed invoke rate, the configured Capacity)
//     into a wire.NodeLoad. Samples ride a low-rate heartbeat
//     (wire.KLoadGossip, answered with the receiver's own sample so
//     one round trip teaches both ends) and piggyback on HomeUpdate
//     request/response bodies, so the nodes that migrate objects at
//     each other converge on a decaying view of each other's load
//     without a dedicated gossip mesh.
//
//   - The origin pre-placement pass. Origins accumulate affinity
//     gossip for objects they created (departing hosts ship their
//     observations home), so an origin often knows who uses a freshly
//     created object before the object has ever been hot locally. The
//     pass periodically runs the placement engine over home objects
//     still hosted here and pre-places them — closure by closure —
//     near their likely callers.
//
//   - The target-side admission veto. The same overload predicate the
//     engine applies with gossiped samples runs here with the node's
//     authoritative local counts: a migration that would push this
//     node past Capacity×OverloadRatio is refused at MigrateBegin /
//     Install time, so converging traffic is back-pressured even when
//     the coordinators' views are stale.
//
// The autopilot's election is the third consumer of the engine: with
// placement enabled its per-object election is replaced by the
// group-scored, load-discounted election in autopilot.go.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"objmig/internal/core"
	"objmig/internal/placement"
	"objmig/internal/stats"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// PlacementConfig tunes a node's placement subsystem. The zero value
// selects the documented defaults.
type PlacementConfig struct {
	// Heartbeat is the load-gossip period: every Heartbeat the node
	// re-samples its own load and exchanges samples with its known
	// peers. Default 500ms; negative disables the heartbeat (samples
	// then travel only as HomeUpdate piggybacks).
	Heartbeat time.Duration
	// Freshness is the view TTL: a peer sample older than this is
	// ignored (and the headroom discount fades linearly towards it).
	// Default 8× Heartbeat, at least 2s.
	Freshness time.Duration
	// OverloadRatio is the veto threshold shared by scoring and
	// admission: a node whose projected utilisation — hosted objects
	// plus the incoming group, over its Capacity — exceeds this is not
	// a migration target. Default 1.
	OverloadRatio float64
	// LoadDiscount scales how strongly a candidate's utilisation
	// discounts its affinity score. Default 1; negative disables the
	// discount (veto only).
	LoadDiscount float64
	// Hysteresis is the election bar: the winner's discounted score
	// must exceed the strongest rival by this factor. Values below 1
	// are raised to 1; zero selects the default 2.
	Hysteresis float64
	// OriginPass is the origin pre-placement scan period. Default 1s;
	// negative disables the pass.
	OriginPass time.Duration
	// MinTotal is the pressure floor for the origin pass: home objects
	// with less accumulated (gossiped plus observed) pressure are not
	// considered. Default 16.
	MinTotal int64
	// BudgetPerPass caps group migrations per origin pass. Default 2.
	BudgetPerPass int
	// Cooldown is the per-object minimum time between origin-pass
	// migrations. Default 10× OriginPass.
	Cooldown time.Duration
	// Alliance is the cooperation context whose attachment closure
	// travels with a pre-placed object (same semantics as
	// AutopilotConfig.Alliance).
	Alliance AllianceID
	// ShedRatio arms proactive shedding: when the node's own
	// utilisation (the worse of its object-count and byte dimensions)
	// exceeds this, the shed pass migrates its coldest closures towards
	// peers with headroom until utilisation is back at or below the
	// ratio. Must be positive and below OverloadRatio — shedding has to
	// trigger before the admission veto slams shut. 0 disables
	// shedding.
	ShedRatio float64
	// ShedPass is the shed scan period. Default 1s; negative disables
	// the pass even when ShedRatio is set.
	ShedPass time.Duration
	// DegradedPenalty multiplies a degraded candidate's score in the
	// engine's election (critical candidates are vetoed outright).
	// Zero selects the default 0.25; see HealthConfig for how nodes
	// become degraded.
	DegradedPenalty float64
	// DisableReservations reverts target-side admission to the
	// unreserved check-then-act predicate (read hosted counts, compare,
	// answer) instead of the reservation ledger's atomic
	// claim-at-MigrateBegin. With it set, N concurrent coordinators can
	// collectively overshoot the capacity the veto guards — the knob
	// exists for A/B tests and regression demonstrations, not for
	// production.
	DisableReservations bool
}

// withDefaults fills the zero fields.
func (c PlacementConfig) withDefaults() PlacementConfig {
	if c.Heartbeat == 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.Freshness == 0 {
		c.Freshness = 8 * c.Heartbeat
		if c.Freshness < 2*time.Second {
			c.Freshness = 2 * time.Second
		}
	}
	if c.OverloadRatio == 0 {
		c.OverloadRatio = 1
	}
	if c.LoadDiscount == 0 {
		c.LoadDiscount = 1
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 2
	} else if c.Hysteresis < 1 {
		c.Hysteresis = 1
	}
	if c.OriginPass == 0 {
		c.OriginPass = time.Second
	}
	if c.MinTotal <= 0 {
		c.MinTotal = 16
	}
	if c.BudgetPerPass <= 0 {
		c.BudgetPerPass = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 10 * c.OriginPass
		if c.Cooldown < 0 { // OriginPass disabled: pick a plain default
			c.Cooldown = 10 * time.Second
		}
	}
	if c.ShedPass == 0 {
		c.ShedPass = time.Second
	}
	return c
}

// engineOptions maps the config onto the scoring core's options.
func (c PlacementConfig) engineOptions() placement.Options {
	return placement.Options{
		Hysteresis:      c.Hysteresis,
		OverloadRatio:   c.OverloadRatio,
		LoadDiscount:    c.LoadDiscount,
		DegradedPenalty: c.DegradedPenalty,
	}
}

// placementDaemon is one node's running placement subsystem.
type placementDaemon struct {
	node *Node
	cfg  PlacementConfig
	view *placement.View

	rate *stats.EWMA // smoothed invoke rate; daemon-goroutine owned
	// last heartbeat's reference point for the rate computation
	lastServed int64
	lastTick   time.Time

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	cooldown map[core.OID]time.Time
}

// EnablePlacement starts the node's placement subsystem: the load
// sampler and gossip heartbeat, the decaying cluster view, the origin
// pre-placement pass, and the target-side admission veto (the latter
// only bites when Config.Capacity is set). Enabling placement also
// turns the affinity tracker on — the engine scores with its counters
// and the gossip that merges into them. With the autopilot enabled as
// well, its election switches to the engine's group scoring.
func (n *Node) EnablePlacement(cfg PlacementConfig) error {
	if n.closed.Load() {
		return ErrClosed
	}
	cfg = cfg.withDefaults()
	if cfg.ShedRatio < 0 {
		return fmt.Errorf("objmig: placement ShedRatio must be >= 0, got %v", cfg.ShedRatio)
	}
	if cfg.ShedRatio > 0 && cfg.ShedRatio >= cfg.OverloadRatio {
		return fmt.Errorf("objmig: placement ShedRatio (%v) must be below OverloadRatio (%v): shedding has to trigger before the admission veto",
			cfg.ShedRatio, cfg.OverloadRatio)
	}
	n.apMu.Lock()
	defer n.apMu.Unlock()
	if n.closed.Load() {
		return ErrClosed
	}
	if n.pl != nil {
		return fmt.Errorf("objmig: placement already enabled on %s", n.id)
	}
	d := &placementDaemon{
		node:     n,
		cfg:      cfg,
		view:     placement.NewView(cfg.Freshness),
		rate:     stats.NewEWMA(0),
		lastTick: time.Now(),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		cooldown: make(map[core.OID]time.Time),
	}
	n.pl = d
	n.affUsers++
	n.aff.SetEnabled(true)
	n.refreshLoadSample(d)
	n.spawn(d.run)
	return nil
}

// DisablePlacement stops the placement subsystem. It blocks until the
// daemon (and any migration its origin pass is driving) has wound
// down. Safe to call when placement is not running.
func (n *Node) DisablePlacement() {
	n.apMu.Lock()
	d := n.pl
	n.pl = nil
	if d != nil {
		n.affUsers--
		if n.affUsers <= 0 {
			n.aff.SetEnabled(false)
		}
	}
	n.apMu.Unlock()
	if d == nil {
		return
	}
	close(d.stop)
	<-d.done
}

// PlacementEnabled reports whether the placement subsystem is running.
func (n *Node) PlacementEnabled() bool {
	n.apMu.Lock()
	defer n.apMu.Unlock()
	return n.pl != nil
}

// placementDaemonRef returns the running daemon, if any.
func (n *Node) placementDaemonRef() *placementDaemon {
	n.apMu.Lock()
	defer n.apMu.Unlock()
	return n.pl
}

// LoadView reports the node's current placement view — its own latest
// sample plus every fresh peer sample — for operators and tests.
// Empty when placement is disabled.
func (n *Node) LoadView() []NodeLoad {
	d := n.placementDaemonRef()
	if d == nil {
		return nil
	}
	snaps := d.view.Snapshot()
	out := make([]NodeLoad, len(snaps))
	for i, s := range snaps {
		out[i] = NodeLoad{Node: s.Node, Objects: s.Objects, Bytes: s.Bytes,
			RateMilli: s.RateMilli, Capacity: s.Capacity, CapacityBytes: s.CapBytes,
			Health: HealthState(s.Health)}
	}
	return out
}

// NodeLoad is one node's load sample in LoadView's report.
type NodeLoad struct {
	Node          NodeID      // the sampled node
	Objects       int64       // live hosted objects
	Bytes         int64       // approximate resident state bytes
	RateMilli     int64       // smoothed invocations/second ×1000
	Capacity      int64       // configured object capacity (0 = uncapped)
	CapacityBytes int64       // configured byte capacity (0 = uncapped)
	Health        HealthState // gossiped health state
}

// run is the daemon loop: heartbeat ticks re-sample and gossip load,
// origin ticks pre-place home objects. The sampler runs even when the
// heartbeat RPCs are disabled (negative Heartbeat) — the HomeUpdate
// piggybacks must never carry a frozen enable-time sample.
func (d *placementDaemon) run() {
	defer close(d.done)
	sample := d.cfg.Heartbeat
	if sample <= 0 {
		sample = 500 * time.Millisecond
	}
	hb := time.NewTicker(sample)
	defer hb.Stop()
	op := foreverTicker(d.cfg.OriginPass)
	defer op.Stop()
	shedEvery := d.cfg.ShedPass
	if d.cfg.ShedRatio <= 0 {
		shedEvery = -1
	}
	sp := foreverTicker(shedEvery)
	defer sp.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-hb.C:
			load := d.node.refreshLoadSample(d)
			// Ledger backstop: the session janitor releases claims with
			// their sessions; this sweep only catches claims orphaned by
			// a janitor that never ran (defence in depth, normally a
			// no-op).
			d.node.expireReservations(time.Now())
			if d.cfg.Heartbeat > 0 {
				d.gossip(load)
			}
		case <-op.C:
			d.originPass()
		case <-sp.C:
			d.shedPass()
		}
	}
}

// foreverTicker returns a ticker for the period, or one that never
// fires when the period is negative (the feature is disabled).
func foreverTicker(period time.Duration) *time.Ticker {
	if period <= 0 {
		t := time.NewTicker(time.Hour)
		t.Stop()
		return t
	}
	return time.NewTicker(period)
}

// gossip exchanges the node's latest sample with every known peer
// (configured peers, peers in the view, and the callers the affinity
// tracker has seen).
func (d *placementDaemon) gossip(load wire.NodeLoad) {
	n := d.node
	peers := d.gossipPeers()
	if len(peers) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Heartbeat*4+time.Second)
	defer cancel()
	defer cancelOnStop(d.stop, cancel)() // shutdown must not wait out slow peers
	var wg sync.WaitGroup
	for _, peer := range peers {
		wg.Add(1)
		go func(peer NodeID) {
			defer wg.Done()
			var resp wire.LoadGossipResp
			if err := n.call(ctx, peer, wire.KLoadGossip, &wire.LoadGossipReq{Load: load}, &resp); err != nil {
				return
			}
			n.stats.loadGossipSent.Add(1)
			n.observeLoad(&resp.Load)
		}(peer)
	}
	wg.Wait()
}

// refreshLoadSample rebuilds the node's own load sample, updates the
// smoothed invoke rate, caches the sample for piggybacks and folds it
// into the node's own view (the engine scores self and peers alike).
func (n *Node) refreshLoadSample(d *placementDaemon) wire.NodeLoad {
	objs, bytes := n.store.HostedStats()
	served := n.stats.invocationsServed.Load()
	now := time.Now()
	if dt := now.Sub(d.lastTick).Seconds(); dt > 0 {
		d.rate.Observe(float64(served-d.lastServed) / dt)
	}
	d.lastServed, d.lastTick = served, now
	load := wire.NodeLoad{
		Node:      n.id,
		Objects:   objs,
		Bytes:     bytes,
		RateMilli: int64(d.rate.Value() * 1000),
		Capacity:  n.capacity,
		CapBytes:  n.capBytes,
		Seq:       n.loadSeq.Add(1),
		Health:    uint8(n.healthState.Load()),
	}
	n.lastLoad.Store(&load)
	d.view.Observe(placementSample(&load))
	// The view's worst-case staleness is the one number that tells an
	// operator whether placement decisions run on live or fossil data.
	_, maxAge := d.view.Ages(n.id)
	n.tel.viewAgeMax.Set(maxAge.Microseconds())
	return load
}

// cachedLoadSample returns the node's latest self-sample for
// piggybacking, or nil when placement is disabled.
func (n *Node) cachedLoadSample() *wire.NodeLoad {
	if n.placementDaemonRef() == nil {
		return nil
	}
	return n.lastLoad.Load()
}

// observeLoad folds a received sample into the placement view.
func (n *Node) observeLoad(load *wire.NodeLoad) {
	if load == nil || load.Node == "" || load.Node == n.id {
		return
	}
	d := n.placementDaemonRef()
	if d == nil {
		return
	}
	n.stats.loadGossipReceived.Add(1)
	d.view.Observe(placementSample(load))
}

// placementSample converts the wire form into the engine's.
func placementSample(l *wire.NodeLoad) placement.Sample {
	return placement.Sample{Node: l.Node, Objects: l.Objects, Bytes: l.Bytes,
		RateMilli: l.RateMilli, Capacity: l.Capacity, CapBytes: l.CapBytes, Seq: l.Seq,
		Health: l.Health}
}

// handleLoadGossip serves a heartbeat: fold the sender's sample in,
// answer with our own.
func (n *Node) handleLoadGossip(req *wire.LoadGossipReq) (*wire.LoadGossipResp, error) {
	n.observeLoad(&req.Load)
	resp := &wire.LoadGossipResp{}
	if self := n.cachedLoadSample(); self != nil {
		resp.Load = *self
	}
	return resp, nil
}

// gossipPeers collects the nodes worth heartbeating: the configured
// address book, every peer with a fresh sample in the view, and the
// callers the affinity tracker has observed.
func (d *placementDaemon) gossipPeers() []NodeID {
	n := d.node
	seen := make(map[NodeID]bool)
	n.cfgMu.RLock()
	for id := range n.peers {
		seen[id] = true
	}
	n.cfgMu.RUnlock()
	for _, id := range d.view.Nodes() {
		seen[id] = true
	}
	for _, id := range n.aff.CallerNodes() {
		seen[id] = true
	}
	delete(seen, n.id)
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// originPass pre-places home objects: the engine runs over the
// affinity this origin has accumulated — much of it gossip from
// departing hosts — and migrates closures towards their likely
// callers, within the pass budget.
func (d *placementDaemon) originPass() {
	n := d.node
	n.stats.placementScans.Add(1)
	d.reapCooldowns(time.Now())
	hot := n.aff.Hot(d.cfg.MinTotal)
	if len(hot) == 0 {
		return
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Total != hot[j].Total {
			return hot[i].Total > hot[j].Total
		}
		return hot[i].Obj.Less(hot[j].Obj)
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	defer cancelOnStop(d.stop, cancel)()

	budget := d.cfg.BudgetPerPass
	visited := make(map[core.OID]bool)
	for _, h := range hot {
		if budget <= 0 || ctx.Err() != nil {
			return
		}
		// Home objects hosted here only: the pass is the origin acting
		// on its own accumulated gossip, not a second autopilot.
		if h.Obj.Origin != n.id || visited[h.Obj] {
			continue
		}
		if _, hosted := n.store.Hosted(h.Obj); !hosted {
			continue
		}
		if d.onCooldown(h.Obj, time.Now()) {
			continue
		}
		members, err := n.closureOf(ctx, h.Obj, d.cfg.Alliance)
		if err != nil {
			continue
		}
		for oid := range members {
			visited[oid] = true
		}
		g := n.groupAffinity(members)
		dec, ok := placement.Score(g, d.view, d.cfg.engineOptions())
		n.tel.placementScores.Inc()
		if !ok {
			continue
		}
		moved, err := n.migrateClosureSoft(ctx, h.Obj, members, dec.Target)
		if err != nil {
			d.setCooldown(h.Obj, time.Now())
			continue
		}
		budget--
		n.stats.placementMigrations.Add(1)
		n.stats.placementObjectsMoved.Add(int64(len(moved)))
		now := time.Now()
		refs := make([]Ref, len(moved))
		for i, oid := range moved {
			refs[i] = Ref{OID: oid}
			d.setCooldown(oid, now)
		}
		n.emit(Event{Kind: EventPlacement, Obj: Ref{OID: h.Obj}, Target: dec.Target,
			Outcome: "origin", Objects: refs})
	}
}

// onCooldown reports whether the object pre-placed too recently.
func (d *placementDaemon) onCooldown(obj core.OID, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	until, ok := d.cooldown[obj]
	if ok && now.Before(until) {
		return true
	}
	if ok {
		delete(d.cooldown, obj)
	}
	return false
}

// setCooldown stamps the object's next earliest pre-placement.
func (d *placementDaemon) setCooldown(obj core.OID, now time.Time) {
	d.mu.Lock()
	d.cooldown[obj] = now.Add(d.cfg.Cooldown)
	d.mu.Unlock()
}

// reapCooldowns drops expired stamps (same hygiene as the autopilot's).
func (d *placementDaemon) reapCooldowns(now time.Time) {
	d.mu.Lock()
	for obj, until := range d.cooldown {
		if !now.Before(until) {
			delete(d.cooldown, obj)
		}
	}
	d.mu.Unlock()
}

// groupAffinity aggregates the affinity tracker's counters over an
// attachment closure: the scoring engine's Group input. Members hosted
// elsewhere contribute nothing — this node can only speak for the
// pressure it has observed (or been gossiped).
func (n *Node) groupAffinity(members map[core.OID]NodeID) placement.Group {
	g := placement.Group{Self: n.id, Members: len(members),
		PerNode: make(map[core.NodeID]int64)}
	for oid, host := range members {
		if host != n.id {
			continue
		}
		l := n.aff.Load(oid)
		g.Local += l.Local
		for _, c := range l.Callers {
			g.PerNode[c.Node] += c.Count
		}
		if rec, ok := n.store.Hosted(oid); ok {
			g.Bytes += rec.StateBytes
		}
	}
	return g
}

// migrateClosureSoft drives one engine-elected group migration through
// the standard machinery with the optimiser's admission rule: fixed or
// placed members veto the whole transfer — the engine, like the
// autopilot, is never an override. The trace is minted here, at the
// decision point, so both callers (the autopilot election and the
// origin pass) get per-decision timelines for free.
func (n *Node) migrateClosureSoft(ctx context.Context, anchor core.OID, members map[core.OID]NodeID, target NodeID) ([]core.OID, error) {
	admit := func(s *wire.Snapshot) error {
		if s.Pol.Lock.Held {
			return wire.Errorf(wire.CodeDenied, "placement: member %s is placed", s.ID)
		}
		if s.Pol.Fixed {
			return wire.Errorf(wire.CodeFixed, "placement: member %s is fixed", s.ID)
		}
		return nil
	}
	return n.migrateGroup(ctx, members, target, anchor, admit, nil, n.nextTrace())
}

// selfSample is the node's authoritative local load sample — what a
// peer would see gossiped, read directly from the store.
func (n *Node) selfSample() placement.Sample {
	hosted, bytes := n.store.HostedStats()
	return placement.Sample{Node: n.id, Objects: hosted, Bytes: bytes,
		Capacity: n.capacity, CapBytes: n.capBytes}
}

// admitAndReserve is the target-side admission veto, now exact: the
// engine's overload predicate evaluated with this node's authoritative
// counts, atomically with a reservation claim in the ledger so N
// concurrent coordinators racing this target cannot collectively
// overshoot its capacity. Objects already present (hosted or paused
// here) do not count as incoming, so same-node reshuffles and
// returning objects are never vetoed. bytes is the coordinator's
// estimate of the group's snapshot footprint; token keys the claim
// alongside the staging session, and the caller owns releasing it
// (dropSession / commit / one-shot completion) whenever reserved is
// true. A nil error admits the migration.
//
// With cfg.DisableReservations the pre-ledger check-then-act predicate
// runs instead: correct against a single coordinator, overshootable by
// concurrent ones — the A/B baseline the ledger exists to replace.
func (n *Node) admitAndReserve(objs []core.OID, bytes int64, from NodeID, token uint64) (reserved bool, err error) {
	// A draining node refuses every inbound migration outright —
	// capacity or not — so the optimiser daemons and rival coordinators
	// cannot refill it while a drain job empties it. Objects already
	// present still re-admit (same-node reshuffles, returning objects).
	if n.draining.Load() && len(objs) > 0 {
		incoming := 0
		for _, rec := range n.store.GetBatch(objs) {
			if rec == nil || rec.IsGone() {
				incoming++
			}
		}
		if incoming > 0 {
			n.stats.placementVetoes.Add(1)
			refs := make([]Ref, len(objs))
			for i, oid := range objs {
				refs[i] = Ref{OID: oid}
			}
			n.emit(Event{Kind: EventPlacement, Target: from, Outcome: "veto", Objects: refs})
			return false, wire.Errorf(wire.CodeDenied,
				"node %s is draining: migration of %d objects refused", n.id, incoming)
		}
	}
	// A critical node refuses inbound migrations the same way a
	// draining one does — its own health engine has judged it unfit to
	// take more load, capacity headroom notwithstanding. This is the
	// authoritative, target-side half of the health gate: a coordinator
	// whose gossiped view lags (or predates) the transition is
	// back-pressured here instead of trusted.
	if HealthState(n.healthState.Load()) >= HealthCritical && len(objs) > 0 {
		incoming := 0
		for _, rec := range n.store.GetBatch(objs) {
			if rec == nil || rec.IsGone() {
				incoming++
			}
		}
		if incoming > 0 {
			n.stats.healthVetoes.Add(1)
			n.stats.placementVetoes.Add(1)
			refs := make([]Ref, len(objs))
			for i, oid := range objs {
				refs[i] = Ref{OID: oid}
			}
			n.emit(Event{Kind: EventPlacement, Target: from, Outcome: "veto", Objects: refs})
			return false, wire.Errorf(wire.CodeDenied,
				"node %s is critical: migration of %d objects refused", n.id, incoming)
		}
	}
	d := n.placementDaemonRef()
	if d == nil || (n.capacity <= 0 && n.capBytes <= 0) || len(objs) == 0 {
		return false, nil
	}
	incoming := 0
	for _, rec := range n.store.GetBatch(objs) {
		if rec == nil || rec.IsGone() {
			incoming++
		}
	}
	if incoming == 0 {
		return false, nil
	}
	if d.cfg.DisableReservations {
		self := n.selfSample()
		if !placement.Overloaded(self, incoming, bytes, d.cfg.OverloadRatio) {
			return false, nil
		}
		return false, n.placementVeto(objs, from, incoming, bytes)
	}
	key := placement.ClaimKey{From: from, Token: token}
	claim := placement.Claim{Objects: int64(incoming), Bytes: bytes}
	if !n.resv.Admit(key, claim, d.cfg.OverloadRatio, n.selfSample) {
		return false, n.placementVeto(objs, from, incoming, bytes)
	}
	n.stats.placementReservations.Add(1)
	n.publishReserved()
	return true, nil
}

// placementVeto records and reports one refused admission.
func (n *Node) placementVeto(objs []core.OID, from NodeID, incoming int, bytes int64) error {
	n.stats.placementVetoes.Add(1)
	refs := make([]Ref, len(objs))
	for i, oid := range objs {
		refs[i] = Ref{OID: oid}
	}
	n.emit(Event{Kind: EventPlacement, Target: from, Outcome: "veto", Objects: refs})
	hosted, hostedBytes := n.store.HostedStats()
	res := n.resv.Reserved()
	return wire.Errorf(wire.CodeDenied,
		"node %s is at capacity (%d hosted + %d reserved, %d incoming, capacity %d objects / %d bytes; %d+%d incoming bytes of %d reserved): migration refused",
		n.id, hosted, res.Objects, incoming, n.capacity, n.capBytes,
		hostedBytes, bytes, res.Bytes)
}

// releaseReservation drops the ledger claim keyed (from, token), if
// one exists — called from every session release point: commit (after
// the install has landed in the hosted counts), abort, and TTL expiry.
func (n *Node) releaseReservation(from NodeID, token uint64) {
	if _, ok := n.resv.Release(placement.ClaimKey{From: from, Token: token}); ok {
		n.publishReserved()
	}
}

// expireReservations is the heartbeat-driven backstop sweep: claims
// older than twice the session TTL have outlived any session that
// could still convert them.
func (n *Node) expireReservations(now time.Time) {
	freed := n.resv.ExpireBefore(now.Add(-2 * n.migrate.SessionTTL))
	if freed.Objects > 0 || freed.Bytes > 0 {
		n.publishReserved()
	}
}

// publishReserved refreshes the objmig_placement_reserved_bytes gauge.
func (n *Node) publishReserved() {
	n.tel.reservedBytes.Set(n.resv.Reserved().Bytes)
}

// shedCand is one ranked shed candidate: a hosted object ordered by
// coldness × size (biggest, least-wanted first).
type shedCand struct {
	oid   core.OID
	bytes int64
	score float64 // bytes per unit of observed pressure
}

// shedPlan ranks the node's hosted objects for shedding: inverse
// affinity × resident bytes, so the pass drains the closures that cost
// the most capacity and are wanted the least. Pure planning — no
// pauses, no RPCs — so it is cheap enough to rerun every pass (and to
// benchmark: BenchmarkShedPlan).
func (d *placementDaemon) shedPlan() []shedCand {
	n := d.node
	var plan []shedCand
	n.store.Range(func(rec *store.Record) bool {
		if rec.IsGone() {
			return true
		}
		total := n.aff.Total(rec.ID)
		plan = append(plan, shedCand{
			oid:   rec.ID,
			bytes: rec.StateBytes,
			score: float64(rec.StateBytes+1) / float64(total+1),
		})
		return true
	})
	sort.Slice(plan, func(i, j int) bool {
		if plan[i].score != plan[j].score {
			return plan[i].score > plan[j].score
		}
		return plan[i].oid.Less(plan[j].oid)
	})
	return plan
}

// shedPass is the veto's push half: while the node's own utilisation
// sits above ShedRatio, migrate the coldest closures towards the peer
// with the most headroom. Each shed re-reads the local sample before
// the next, and ShedTarget refuses any peer whose projected
// utilisation would reach ShedRatio — together with the per-closure
// cooldown this is what keeps two draining nodes from ping-ponging a
// group. Budgeted per pass exactly like the origin pass.
func (d *placementDaemon) shedPass() {
	n := d.node
	if d.cfg.ShedRatio <= 0 {
		return
	}
	if placement.Utilisation(n.selfSample(), 0, 0) <= d.cfg.ShedRatio {
		return
	}
	n.stats.placementScans.Add(1)
	d.reapCooldowns(time.Now())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	defer cancelOnStop(d.stop, cancel)()

	budget := d.cfg.BudgetPerPass
	visited := make(map[core.OID]bool)
	for budget > 0 && ctx.Err() == nil {
		if placement.Utilisation(n.selfSample(), 0, 0) <= d.cfg.ShedRatio {
			return // drained below the ratio: pass complete
		}
		shed := false
		for _, cand := range d.shedPlan() {
			if ctx.Err() != nil {
				return
			}
			if visited[cand.oid] || d.onCooldown(cand.oid, time.Now()) {
				continue
			}
			members, err := n.closureOf(ctx, cand.oid, d.cfg.Alliance)
			if err != nil {
				visited[cand.oid] = true
				continue
			}
			for oid := range members {
				visited[oid] = true
			}
			g := n.groupAffinity(members)
			dec, ok := placement.ShedTarget(g, d.view, d.cfg.ShedRatio)
			n.tel.placementScores.Inc()
			if !ok {
				// No peer with headroom for this closure; smaller ones
				// later in the plan may still fit.
				d.setCooldown(cand.oid, time.Now())
				continue
			}
			moved, err := n.migrateClosureSoft(ctx, cand.oid, members, dec.Target)
			if err != nil {
				d.setCooldown(cand.oid, time.Now())
				continue
			}
			budget--
			n.stats.placementSheds.Add(1)
			n.stats.placementMigrations.Add(1)
			n.stats.placementObjectsMoved.Add(int64(len(moved)))
			n.stats.placementShedBytes.Add(g.Bytes)
			now := time.Now()
			refs := make([]Ref, len(moved))
			for i, oid := range moved {
				refs[i] = Ref{OID: oid}
				d.setCooldown(oid, now)
			}
			n.emit(Event{Kind: EventPlacement, Obj: Ref{OID: cand.oid}, Target: dec.Target,
				Outcome: "shed", Objects: refs})
			shed = true
			break // re-read utilisation before shedding more
		}
		if !shed {
			return // nothing sheddable this pass
		}
	}
}
