package sim

import (
	"math"
	"strings"
	"testing"

	"objmig/internal/core"
)

func TestExperimentCatalogue(t *testing.T) {
	t.Parallel()
	es := Experiments()
	if len(es) != 6 {
		t.Fatalf("got %d experiments, want 6", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Xs) == 0 || len(e.Series) == 0 || e.Apply == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if e.Base.MigrationTime != 6 {
			t.Fatalf("experiment %q: M = %v, want 6 (paper)", e.ID, e.Base.MigrationTime)
		}
	}
	for _, id := range []string{"fig8", "fig10", "fig11", "fig12", "fig14", "fig16"} {
		if !seen[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
	if _, ok := ExperimentByID("fig8"); !ok {
		t.Fatal("ExperimentByID(fig8) failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("ExperimentByID accepted an unknown id")
	}
	if got := len(SortedIDs()); got != len(Experiments())+len(Extensions()) {
		t.Fatalf("SortedIDs has %d entries", got)
	}
}

func TestExtensionsCatalogue(t *testing.T) {
	t.Parallel()
	exts := Extensions()
	if len(exts) != 6 {
		t.Fatalf("got %d extensions, want 6", len(exts))
	}
	for _, id := range []string{"fig16x", "ablation-grouplock", "placement-cap", "shed", "drain", "sick"} {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("extension %q not resolvable", id)
		}
		if len(e.Series) == 0 || len(e.Xs) == 0 {
			t.Fatalf("extension %q incomplete", id)
		}
	}
	// The ablation must actually toggle the group lock.
	abl, _ := ExperimentByID("ablation-grouplock")
	toggled := false
	for _, s := range abl.Series {
		if s.NoGroupLock {
			toggled = true
		}
	}
	if !toggled {
		t.Fatal("ablation series never disables the group lock")
	}
}

// TestGroupLockAblationDirection: with A-transitive working sets the
// group lock must help (it is the mechanism that keeps a placed working
// set together).
func TestGroupLockAblationDirection(t *testing.T) {
	t.Parallel()
	base := Config{
		Nodes: 24, Clients: 10, Servers1: 6, Servers2: 6,
		MigrationTime: 6, MeanCalls: 6, MeanInterCall: 1, MeanInterBlock: 30,
		Policy: core.PolicyPlacement, Attach: core.AttachATransitive,
		Seed: 7, WarmupCalls: 500, BatchSize: 200, MaxCalls: 30000, CIRel: 0.02,
	}
	locked := mustRunT(t, base)
	base.DisableGroupLock = true
	unlocked := mustRunT(t, base)
	if !(locked.CommTimePerCall < unlocked.CommTimePerCall) {
		t.Fatalf("group lock did not help: locked %v vs unlocked %v",
			locked.CommTimePerCall, unlocked.CommTimePerCall)
	}
}

func mustRunT(t *testing.T, cfg Config) Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExperimentParametersMatchPaper(t *testing.T) {
	t.Parallel()
	f8, _ := ExperimentByID("fig8")
	if f8.Base.Nodes != 3 || f8.Base.Clients != 3 || f8.Base.Servers1 != 3 ||
		f8.Base.MeanCalls != 8 || f8.Base.MeanInterCall != 1 {
		t.Fatalf("fig8 base = %+v, departs from Fig. 9 parameters", f8.Base)
	}
	f12, _ := ExperimentByID("fig12")
	if f12.Base.Nodes != 27 || f12.Base.Servers1 != 3 || f12.Base.MeanInterBlock != 30 {
		t.Fatalf("fig12 base = %+v, departs from Fig. 13 parameters", f12.Base)
	}
	f14, _ := ExperimentByID("fig14")
	if f14.Base.Nodes != 3 || len(f14.Series) != 3 {
		t.Fatalf("fig14 = %+v, departs from Fig. 15 parameters", f14.Base)
	}
	f16, _ := ExperimentByID("fig16")
	if f16.Base.Nodes != 24 || f16.Base.Servers1 != 6 || f16.Base.Servers2 != 6 ||
		f16.Base.MeanCalls != 6 || len(f16.Series) != 5 {
		t.Fatalf("fig16 = %+v, departs from Fig. 17 parameters", f16.Base)
	}
}

// tinyExperiment is a scaled-down sweep for harness tests.
func tinyExperiment() Experiment {
	return Experiment{
		ID:     "tiny",
		Title:  "tiny test experiment",
		XLabel: "clients",
		Metric: MetricCommTime,
		Xs:     []float64{2, 3},
		Series: []Series{
			{Label: "sedentary", Policy: core.PolicySedentary},
			{Label: "placement", Policy: core.PolicyPlacement},
		},
		Base: Config{
			Nodes: 3, Servers1: 3,
			MigrationTime: 6, MeanCalls: 8, MeanInterCall: 1, MeanInterBlock: 10,
		},
		Apply: applyClients,
	}
}

func TestRunExperiment(t *testing.T) {
	t.Parallel()
	tbl, err := RunExperiment(tinyExperiment(), RunOpts{Seed: 1, Quick: true, MaxCalls: 4000, Parallelism: 4})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if len(tbl.Y) != 2 || len(tbl.Y[0]) != 2 {
		t.Fatalf("table shape %dx%d, want 2x2", len(tbl.Y), len(tbl.Y[0]))
	}
	for i := range tbl.Y {
		for j := range tbl.Y[i] {
			if tbl.Y[i][j] <= 0 {
				t.Fatalf("cell (%d,%d) = %v, want > 0", i, j, tbl.Y[i][j])
			}
			if tbl.Cells[i][j].Calls == 0 {
				t.Fatalf("cell (%d,%d) has no calls", i, j)
			}
		}
	}
	// Determinism of the harness as a whole.
	tbl2, err := RunExperiment(tinyExperiment(), RunOpts{Seed: 1, Quick: true, MaxCalls: 4000, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tbl.Y {
		for j := range tbl.Y[i] {
			if tbl.Y[i][j] != tbl2.Y[i][j] {
				t.Fatalf("harness nondeterministic at (%d,%d): %v vs %v", i, j, tbl.Y[i][j], tbl2.Y[i][j])
			}
		}
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	t.Parallel()
	tbl := Table{
		Experiment: tinyExperiment(),
		Y:          [][]float64{{1.25, 0.75}, {1.3, 0.9}},
		Cells:      [][]Result{{{}, {}}, {{}, {}}},
	}
	text := tbl.Format()
	for _, want := range []string{"tiny test experiment", "sedentary", "placement", "1.2500", "0.9000"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Format output missing %q:\n%s", want, text)
		}
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "x,") {
		t.Fatalf("CSV header: %q", csv)
	}
	if !strings.Contains(csv, "\"placement\"") || !strings.Contains(csv, "0.750000") {
		t.Fatalf("CSV body:\n%s", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Fatalf("CSV has %d lines, want 3", lines)
	}
}

func TestColumnAndCrossover(t *testing.T) {
	t.Parallel()
	e := tinyExperiment()
	e.Xs = []float64{0, 10, 20, 30}
	e.Series = []Series{{Label: "a"}, {Label: "b"}}
	tbl := Table{
		Experiment: e,
		Y: [][]float64{
			{1, 2},
			{1.5, 2},
			{2.5, 2},
			{3, 2},
		},
	}
	if got := tbl.Column("b"); len(got) != 4 || got[0] != 2 {
		t.Fatalf("Column(b) = %v", got)
	}
	if got := tbl.Column("zzz"); got != nil {
		t.Fatalf("Column(zzz) = %v, want nil", got)
	}
	// a crosses b between x=10 (a=1.5) and x=20 (a=2.5): at 15.
	x := tbl.Crossover("a", "b")
	if math.Abs(x-15) > 1e-9 {
		t.Fatalf("Crossover = %v, want 15", x)
	}
	// b never rises above a after a's crossing... b crosses a below
	// x=10, never: b-a at x=0 is +1, so crossover at the first point.
	if x := tbl.Crossover("b", "a"); x != 0 {
		t.Fatalf("Crossover(b,a) = %v, want 0", x)
	}
	flat := Table{Experiment: e, Y: [][]float64{{1, 2}, {1, 2}, {1, 2}, {1, 2}}}
	if x := flat.Crossover("a", "b"); !math.IsNaN(x) {
		t.Fatalf("Crossover on non-crossing series = %v, want NaN", x)
	}
}

func TestParameterTable(t *testing.T) {
	t.Parallel()
	f12, _ := ExperimentByID("fig12")
	txt := f12.ParameterTable()
	for _, want := range []string{"D  (number of nodes)", "27", "variable", "exp. mean(30)", "exp. mean(1)"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("parameter table missing %q:\n%s", want, txt)
		}
	}
}

func TestCellSeedsDistinct(t *testing.T) {
	t.Parallel()
	s := map[int64]bool{}
	for _, id := range []string{"fig8", "fig12"} {
		for _, label := range []string{"a", "b"} {
			for _, x := range []float64{1, 2, 3} {
				seed := cellSeed(42, id, label, x)
				if s[seed] {
					t.Fatalf("seed collision for %s/%s/%v", id, label, x)
				}
				s[seed] = true
			}
		}
	}
}

func TestMetricString(t *testing.T) {
	t.Parallel()
	if MetricCommTime.String() == "unknown" || Metric(99).String() != "unknown" {
		t.Fatal("Metric.String mismatch")
	}
	r := Result{CommTimePerCall: 1, CallDuration: 2, MigrationPerCall: 3}
	if MetricCommTime.pick(r) != 1 || MetricCallDuration.pick(r) != 2 || MetricMigrationPerCall.pick(r) != 3 {
		t.Fatal("Metric.pick mismatch")
	}
}
