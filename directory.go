package objmig

import "time"

// DirectoryConfig tunes the node's location directory: the hint-cache
// bound, forwarding-state retirement, closure-level location records
// and the chase-hop observability budget. The zero value selects the
// documented defaults.
type DirectoryConfig struct {
	// HintCacheCap bounds the foreign-object hint cache (total entries
	// across shards, evicted per shard). 0 selects the default
	// (store.DefaultHintCacheCap, 64Ki entries); negative disables the
	// bound.
	HintCacheCap int
	// ForwardTTL ages out forwarding pointers (and their stubs) that
	// were never confirmed by the origin — the backstop for lost home
	// updates. 0 selects the default (store.DefaultForwardTTL, 10m);
	// negative disables TTL compaction.
	ForwardTTL time.Duration
	// ChaseHopBudget is the observability threshold for chase length:
	// a chase using more remote hops than this counts towards
	// Stats.ChasesOverBudget and emits an EventChase. 0 selects the
	// default (4); negative disables the event.
	ChaseHopBudget int
	// DisableClosureRecords turns closure-level location records off:
	// group migrations then report per-object entries everywhere, as
	// before. Useful for A/B measurement (BenchmarkDirectoryMillion
	// compares both modes).
	DisableClosureRecords bool
}

// Defaults mirrored from internal/store so callers of the public API
// never import it.
const (
	defaultChaseHopBudget = 4
	defaultHintCacheCap   = 65536
	defaultForwardTTL     = 10 * time.Minute
)

func (c DirectoryConfig) withDefaults() DirectoryConfig {
	if c.HintCacheCap == 0 {
		c.HintCacheCap = defaultHintCacheCap
	}
	if c.ForwardTTL == 0 {
		c.ForwardTTL = defaultForwardTTL
	}
	if c.ChaseHopBudget == 0 {
		c.ChaseHopBudget = defaultChaseHopBudget
	}
	return c
}

// closureRecords reports whether closure-level location records are
// enabled on this node.
func (n *Node) closureRecords() bool { return !n.dir.DisableClosureRecords }

// CompactDirectory runs one forward-compaction sweep immediately: TTL
// expiry of unconfirmed forwarding pointers, stub retirement and
// closure-record reaping. The node triggers this automatically every
// few thousand departures; the explicit hook exists for tests and
// operational tooling. Returns the number of forwarding entries
// removed.
func (n *Node) CompactDirectory() int { return n.store.CompactForwards() }
