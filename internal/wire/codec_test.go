package wire

import (
	"reflect"
	"testing"

	"objmig/internal/core"
)

// fastBodies is one populated specimen per fast-path type (pointer
// form, as the rpc layer passes them).
func fastBodies() []interface{} {
	oid1 := core.OID{Origin: "n1", Seq: 42}
	oid2 := core.OID{Origin: "n2", Seq: 7}
	snap := Snapshot{
		ID:    oid1,
		Type:  "counter",
		Gen:   6,
		State: []byte{9, 8, 7},
		Pol: core.ObjState{
			Fixed:     true,
			Lock:      core.LockState{Held: true, Owner: "n3", Block: 11},
			OpenMoves: map[core.NodeID]int{"a": 2, "b": 5},
		},
		Edges: []EdgeRec{{Other: oid2, Alliance: 3}, {Other: oid1, Alliance: 0}},
	}
	load := NodeLoad{Node: "n9", Objects: 120, Bytes: 1 << 20, RateMilli: 2500, Capacity: 256, CapBytes: 1 << 30, Seq: 31, Health: 2}
	return []interface{}{
		&InvokeReq{Obj: oid1, Method: "Add", Arg: []byte{1, 2, 3}, From: "n7"},
		&InvokeResp{Result: []byte{4, 5}, At: "n2"},
		&LocateReq{Obj: oid2},
		&LocateResp{At: "n5"},
		&HomeUpdate{Objs: []core.OID{oid1, oid2}, Gens: []uint64{3, 9}, At: "n4",
			Closures: []ClosureLoc{
				{Anchor: oid1, Gen: 4, Members: []core.OID{oid1, oid2}},
				{Anchor: oid2, Gen: 1, Members: []core.OID{oid2}},
			},
			Aff: []AffinityObs{
				{Obj: oid1, From: "n7", Count: 12},
				{Obj: oid2, From: "n8", Count: 1},
			}, Load: &load},
		&HomeUpdateResp{},
		&HomeUpdateResp{Load: &load},
		&LoadGossipReq{Load: load},
		&LoadGossipResp{Load: NodeLoad{Node: "n0", Seq: 1}},
		&snap,
		&PauseResp{Snapshots: []Snapshot{snap, {ID: oid2, Type: "t"}}, Pending: []core.OID{oid1}},
		&InstallReq{Snapshots: []Snapshot{snap}, Token: 99},
		&MigrateBeginReq{Token: 99, From: "n1", Objs: []core.OID{oid1, oid2}, Bytes: 1 << 22},
		&MigrateBeginResp{},
		&MigrateBeginResp{Reserved: true, ReservedBytes: 1 << 22},
		&InstallChunkReq{Token: 99, From: "n1", Seq: 3, Snapshots: []Snapshot{snap}},
		&InstallChunkResp{Staged: 5},
		&InstallCommitReq{Token: 99, From: "n1"},
		&InstallCommitResp{Installed: 17},
		&MoveReq{Obj: oid1, From: "n2", Block: 7, Alliance: 3},
		&MoveResp{Outcome: MoveMigrated, Reason: core.ReasonLocked, At: "n2", Moved: []core.OID{oid1, oid2}},
		&EndReq{Obj: oid1, From: "n2", Block: 7, Alliance: 3, Members: []core.OID{oid1, oid2}},
		&EndResp{Unlocked: true, Migrated: true, At: "n9"},
		&MigrateReq{Obj: oid2, Target: "n5", Alliance: 1, Fix: true},
		&MigrateResp{At: "n5", Moved: []core.OID{oid2}},
	}
}

// TestFastPathRoundTrip: every fast-path body must decode back to a
// deep-equal value, and must actually take the fast path (first byte is
// a non-gob tag).
func TestFastPathRoundTrip(t *testing.T) {
	t.Parallel()
	for _, in := range fastBodies() {
		data, err := Marshal(in)
		if err != nil {
			t.Fatalf("marshal %T: %v", in, err)
		}
		if len(data) == 0 || data[0] == tagGob {
			t.Fatalf("%T did not take the fast path (tag %v)", in, data[0])
		}
		out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
		if err := Unmarshal(data, out); err != nil {
			t.Fatalf("unmarshal %T: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip %T:\n in: %+v\nout: %+v", in, in, out)
		}
	}
}

// TestFastPathValueForms: Marshal accepts value (non-pointer) bodies
// like gob does, producing the same bytes as the pointer form.
func TestFastPathValueForms(t *testing.T) {
	t.Parallel()
	req := InvokeReq{Obj: core.OID{Origin: "n", Seq: 1}, Method: "m", Arg: []byte{1}}
	byVal, err := Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	byPtr, err := Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byVal, byPtr) {
		t.Fatal("value and pointer forms encode differently")
	}
}

// TestFastPathEmptySemantics: zero-length byte fields decode as nil
// (gob's behaviour), so callers see identical semantics on both paths.
func TestFastPathEmptySemantics(t *testing.T) {
	t.Parallel()
	in := &InvokeReq{Obj: core.OID{Origin: "n", Seq: 1}, Method: "", Arg: []byte{}}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out InvokeReq
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Arg != nil {
		t.Fatalf("empty Arg decoded as %#v, want nil", out.Arg)
	}
	var emptyHU HomeUpdate
	data, err = Marshal(&emptyHU)
	if err != nil {
		t.Fatal(err)
	}
	var outHU HomeUpdate
	if err := Unmarshal(data, &outHU); err != nil {
		t.Fatal(err)
	}
	if outHU.Objs != nil {
		t.Fatalf("empty Objs decoded as %#v, want nil", outHU.Objs)
	}
}

// TestFastPathRejectsCorruption: truncations and trailing garbage must
// error, never panic or silently succeed.
func TestFastPathRejectsCorruption(t *testing.T) {
	t.Parallel()
	for _, in := range fastBodies() {
		data, err := Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(data); cut++ {
			out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
			if err := Unmarshal(data[:cut], out); err == nil && cut < len(data) {
				// Some prefixes of variable-length bodies are valid
				// encodings of shorter values; the decoder must at
				// least not panic. A clean error is required only when
				// the fixed-layout spine is cut.
				continue
			}
		}
		// Trailing garbage after a complete body is always an error.
		out := reflect.New(reflect.TypeOf(in).Elem()).Interface()
		if err := Unmarshal(append(append([]byte{}, data...), 0xFF), out); err == nil {
			t.Fatalf("%T accepted trailing garbage", in)
		}
	}
}

// TestTagMismatch: a body of one kind must not decode into another.
func TestTagMismatch(t *testing.T) {
	t.Parallel()
	data, err := Marshal(&LocateReq{Obj: core.OID{Origin: "n", Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var wrong InvokeReq
	if err := Unmarshal(data, &wrong); err == nil {
		t.Fatal("locate body decoded as invoke request")
	}
}

// TestGobFallbackStillWorks: a non-fast-path body travels via the
// pooled gob layer and round-trips.
func TestGobFallbackStillWorks(t *testing.T) {
	t.Parallel()
	in := &EdgeAddReq{
		Obj:      core.OID{Origin: "n", Seq: 3},
		Other:    core.OID{Origin: "n2", Seq: 4},
		Alliance: 5,
		Mode:     core.AttachExclusive,
	}
	data, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != tagGob {
		t.Fatalf("EdgeAddReq took tag %d, want gob fallback", data[0])
	}
	var out EdgeAddReq
	if err := Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("gob round trip: %+v != %+v", out, *in)
	}
}

// TestSnapshotDeterministicEncoding: the same snapshot must encode to
// identical bytes (OpenMoves iterates in sorted key order) — migration
// batches stay byte-deterministic.
func TestSnapshotDeterministicEncoding(t *testing.T) {
	t.Parallel()
	snap := Snapshot{
		ID:   core.OID{Origin: "n", Seq: 1},
		Type: "t",
		Pol: core.ObjState{
			OpenMoves: map[core.NodeID]int{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5},
		},
	}
	first, err := Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		again, err := Marshal(&snap)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatal("snapshot encoding is nondeterministic")
		}
	}
}

// TestMarshalAppendPrefix: MarshalAppend must extend dst in place,
// leaving the existing prefix intact, and the appended bytes must
// equal a fresh Marshal of the same body — for fast-path and gob
// bodies alike. This is the contract internal/rpc relies on when it
// reserves a frame header and hands the codec the tail.
func TestMarshalAppendPrefix(t *testing.T) {
	t.Parallel()
	bodies := append(fastBodies(),
		&EdgeAddReq{Obj: core.OID{Origin: "n", Seq: 3}, Other: core.OID{Origin: "n2", Seq: 4}}, // gob fallback
	)
	for _, in := range bodies {
		fresh, err := Marshal(in)
		if err != nil {
			t.Fatalf("marshal %T: %v", in, err)
		}
		prefix := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01, 0x02, 0x03, 0x04, 0x05}
		out, err := MarshalAppend(append([]byte(nil), prefix...), in)
		if err != nil {
			t.Fatalf("marshal-append %T: %v", in, err)
		}
		if !reflect.DeepEqual(out[:len(prefix)], prefix) {
			t.Fatalf("%T: MarshalAppend clobbered the reserved prefix", in)
		}
		if !reflect.DeepEqual(out[len(prefix):], fresh) {
			t.Fatalf("%T: appended body differs from fresh Marshal", in)
		}
	}
}

// TestMarshalAppendReusesCapacity: encoding into a buffer with enough
// spare capacity must not reallocate — the zero-copy guarantee that
// lets a pooled frame be reused across calls.
func TestMarshalAppendReusesCapacity(t *testing.T) {
	t.Parallel()
	in := &InvokeReq{Obj: core.OID{Origin: "n", Seq: 1}, Method: "m", Arg: make([]byte, 256)}
	buf := make([]byte, 10, 4096)
	out, err := MarshalAppend(buf, in)
	if err != nil {
		t.Fatal(err)
	}
	if &out[0] != &buf[0] {
		t.Fatal("MarshalAppend reallocated despite sufficient capacity")
	}
}

// TestMarshalAppendErrorLeavesDst: a failed encode must return dst
// unchanged — no partial body may be published into a frame the
// caller will send or recycle.
func TestMarshalAppendErrorLeavesDst(t *testing.T) {
	t.Parallel()
	dst := []byte{1, 2, 3}
	out, err := MarshalAppend(dst, make(chan int)) // gob cannot encode channels
	if err == nil {
		t.Fatal("encoding a channel succeeded")
	}
	if !reflect.DeepEqual(out, []byte{1, 2, 3}) {
		t.Fatalf("failed encode left dst = %v", out)
	}
}
