// Simulation: drive the paper's evaluation model through the public
// sim package — a scaled-down version of Figure 12 (the hot-spot
// experiment) that finds the break-even points where migration stops
// paying off.
package main

import (
	"fmt"
	"log"

	"objmig/sim"
)

func main() {
	exp, ok := sim.ExperimentByID("fig12")
	if !ok {
		log.Fatal("fig12 experiment missing")
	}
	// Thin the sweep for a fast demo run; the full harness lives in
	// cmd/objmig-sim and bench_test.go.
	exp.Xs = []float64{1, 5, 9, 13, 17, 21, 25}

	tbl, err := sim.RunExperiment(exp, sim.RunOpts{Seed: 42, Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.Format())
	fmt.Printf("conventional migration break-even: ~%.1f clients (paper: ~6)\n",
		tbl.Crossover("Migration", "without Migration"))
	fmt.Printf("transient placement break-even:    ~%.1f clients (paper: ~20)\n",
		tbl.Crossover("Transient Placement", "without Migration"))
	fmt.Println("\nThe same Config/Run API supports custom workloads:")

	r, err := sim.Run(sim.Config{
		Nodes: 8, Clients: 6, Servers1: 2,
		MigrationTime: 4, MeanCalls: 10, MeanInterCall: 1, MeanInterBlock: 20,
		Policy: sim.PolicyPlacement,
		Seed:   7, MaxCalls: 20000, CIRel: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("custom cell: %.3f mean communication time per call over %d calls\n",
		r.CommTimePerCall, r.Calls)
}
