// Package registry keeps a node's view of where objects live: the home
// index for objects it created (authoritative, lazily updated), the
// forwarding pointers for objects that migrated away, and a cache of
// hints for remote objects.
//
// This is the location scheme the paper's system model assumes
// ([ChC91], [JLH+88]): a name-service lookup at the object's origin
// plus forward addressing at former hosts. The simulation normalises
// these costs away (Section 4.1); the live runtime implements them.
package registry

import (
	"fmt"
	"sync"

	"objmig/internal/core"
)

// Registry is a node-local location table. It is safe for concurrent
// use.
type Registry struct {
	self core.NodeID

	mu sync.Mutex
	// home maps objects created by this node to their last reported
	// location.
	home map[core.OID]core.NodeID
	// forwards maps objects that were hosted here and left to their
	// next hop.
	forwards map[core.OID]core.NodeID
	// cache holds location hints for foreign objects.
	cache map[core.OID]core.NodeID
}

// New returns a Registry for the given node.
func New(self core.NodeID) *Registry {
	return &Registry{
		self:     self,
		home:     make(map[core.OID]core.NodeID),
		forwards: make(map[core.OID]core.NodeID),
		cache:    make(map[core.OID]core.NodeID),
	}
}

// Created records that this node created the object and hosts it.
func (r *Registry) Created(id core.OID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.home[id] = r.self
}

// Arrived records that the object is now hosted here: any forwarding
// pointer and stale hint is dropped, and the home index is updated when
// this node is the origin.
func (r *Registry) Arrived(id core.OID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.forwards, id)
	delete(r.cache, id)
	if id.Origin == r.self {
		r.home[id] = r.self
	}
}

// Departed records that the object left this node towards to: a
// forwarding pointer replaces the local entry.
func (r *Registry) Departed(id core.OID, to core.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.forwards[id] = to
	if id.Origin == r.self {
		r.home[id] = to
	}
}

// HomeUpdate records a (possibly delayed) report that objects created
// here now live at the given node. Reports about foreign objects are
// ignored.
func (r *Registry) HomeUpdate(ids []core.OID, at core.NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, id := range ids {
		if id.Origin != r.self {
			continue
		}
		r.home[id] = at
	}
}

// Home returns the home-index entry for an object created here.
func (r *Registry) Home(id core.OID) (core.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at, ok := r.home[id]
	return at, ok
}

// Forward returns the forwarding pointer, if any.
func (r *Registry) Forward(id core.OID) (core.NodeID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	to, ok := r.forwards[id]
	return to, ok
}

// Learn records fresher location knowledge for an object that is not
// local. When a forwarding pointer exists it is updated in place — this
// is the classic forward-addressing chain shortening: once we hear
// where the object really is, our pointer skips the intermediate hops.
func (r *Registry) Learn(id core.OID, at core.NodeID) {
	if at == "" || at == r.self {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.forwards[id]; ok {
		r.forwards[id] = at
		if id.Origin == r.self {
			r.home[id] = at
		}
		return
	}
	r.cache[id] = at
}

// Hint suggests where to try first for an object that is not local:
// the freshest of forwarding pointer, home index, cache, falling back
// to the object's origin node.
func (r *Registry) Hint(id core.OID) core.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if to, ok := r.forwards[id]; ok {
		return to
	}
	if id.Origin == r.self {
		if at, ok := r.home[id]; ok {
			return at
		}
	}
	if at, ok := r.cache[id]; ok {
		return at
	}
	return id.Origin
}

// Invalidate drops a cached hint that turned out to be wrong.
func (r *Registry) Invalidate(id core.OID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.cache, id)
}

// Stats reports table sizes (for diagnostics and tests).
func (r *Registry) Stats() (home, forwards, cache int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.home), len(r.forwards), len(r.cache)
}

// Debug renders everything the registry knows about one object
// (diagnostics only).
func (r *Registry) Debug(id core.OID) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, hok := r.home[id]
	f, fok := r.forwards[id]
	c, cok := r.cache[id]
	return fmt.Sprintf("self=%s home=%q(%v) fwd=%q(%v) cache=%q(%v)",
		r.self, h, hok, f, fok, c, cok)
}
