package objmig

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"objmig/internal/health"
)

// EventKind classifies runtime events.
type EventKind int

const (
	// EventInvoke: a method executed on a hosted object.
	EventInvoke EventKind = iota + 1
	// EventMoveDecision: a move-request was decided at this node
	// (Outcome: granted, stayed, denied).
	EventMoveDecision
	// EventEnd: an end-request was processed here.
	EventEnd
	// EventMigration: this node coordinated a transfer batch
	// (Objects lists the working set, Target the destination).
	EventMigration
	// EventInstall: objects arrived and were reinstantiated here.
	EventInstall
	// EventFix: an object's fixed flag changed here.
	EventFix
	// EventAttach: an attachment half-edge was added or removed here.
	EventAttach
	// EventAutopilot: the autopilot migrated an object group towards
	// its heaviest caller (Obj is the elected object, Target the
	// destination, Objects the full group that travelled).
	EventAutopilot
	// EventMigrateStream: a streaming group-migration session changed
	// state. At the target, Outcome is "begin", "commit", "abort" or
	// "expire" and Bytes counts the staged snapshot bytes; at the
	// coordinator, Outcome is "streamed" and Bytes counts the bytes
	// forwarded in InstallChunk frames.
	EventMigrateStream
	// EventPlacement: the placement engine acted here. Outcome
	// "migrate" (the autopilot's group-scored election) or "origin"
	// (the origin pre-placement pass) announce an engine-driven group
	// migration — Obj is the scored root, Target the elected node and
	// Objects the full attachment closure that travelled as a unit.
	// Outcome "veto" reports a migration this node refused as a target
	// because admitting the group would push it past its capacity
	// (Objects lists the refused members, Target the coordinator).
	EventPlacement
	// EventChase: a location chase exceeded the configured hop budget
	// (DirectoryConfig.ChaseHopBudget) — the directory's hints for Obj
	// were stale enough to cost Hops remote calls. Outcome is
	// "over-budget".
	EventChase
	// EventJob: a migration job changed state on its coordinator.
	// Outcome is the lifecycle edge — "plan" (move list computed),
	// "resume" (re-created from a checkpoint), "wave" (a wave started;
	// Wave carries its index), "wave-done" (the wave's moves all
	// settled; Objects lists what travelled, Bytes what it weighed),
	// "retarget" (a vetoed move was re-pointed against the live view;
	// Target names the new receiver), then exactly one of "done",
	// "cancelled" or "failed".
	EventJob
	// EventHealth: the health engine changed this node's state.
	// Outcome is the new state ("healthy", "degraded" or "critical");
	// Hops carries the previous state's numeric value (0/1/2) so
	// observers can tell a recovery from an escalation without
	// parsing.
	EventHealth
	// EventObserverOverflow: the bounded async event sink has been
	// dropping events. Emitted synchronously (it must not itself ride
	// the overflowing queue), rate-limited to at most once per minute;
	// Bytes carries the cumulative drop count at emission time.
	EventObserverOverflow

	// eventKindEnd is one past the last kind. New kinds go above it;
	// the drift test walks [1, eventKindEnd) and fails on any kind
	// String() does not know.
	eventKindEnd
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventInvoke:
		return "invoke"
	case EventMoveDecision:
		return "move-decision"
	case EventEnd:
		return "end"
	case EventMigration:
		return "migration"
	case EventInstall:
		return "install"
	case EventFix:
		return "fix"
	case EventAttach:
		return "attach"
	case EventAutopilot:
		return "autopilot"
	case EventMigrateStream:
		return "migrate-stream"
	case EventPlacement:
		return "placement"
	case EventChase:
		return "chase"
	case EventJob:
		return "job"
	case EventHealth:
		return "health"
	case EventObserverOverflow:
		return "observer-overflow"
	default:
		return "unknown"
	}
}

// Event is one observable runtime occurrence at a node. Events are
// emitted synchronously on the hot path: observers must be fast and
// must not call back into the node.
type Event struct {
	Kind    EventKind // what happened (see the EventKind constants)
	Node    NodeID    // the node the event happened on
	Obj     Ref       // primary object (zero for pure batch events)
	Target  NodeID    // destination (migrations) or requester (moves)
	Outcome string    // granted / stayed / denied / fixed / unfixed / ...
	Objects []Ref     // batch members (migrations, installs)
	Bytes   int64     // snapshot bytes (streaming migration events)
	Hops    int       // remote hops of the chase (EventChase)
	Wave    int       // wave index (EventJob wave progress)
	Time    time.Time // when the node emitted the event
}

// String renders the event compactly for logs.
func (e Event) String() string {
	s := fmt.Sprintf("[%s] %s %s", e.Node, e.Kind, e.Obj)
	if e.Outcome != "" {
		s += " " + e.Outcome
	}
	if e.Target != "" {
		s += " -> " + string(e.Target)
	}
	if len(e.Objects) > 0 {
		s += fmt.Sprintf(" (%d objects)", len(e.Objects))
	}
	if e.Bytes > 0 {
		s += fmt.Sprintf(" (%d bytes)", e.Bytes)
	}
	if e.Hops > 0 {
		s += fmt.Sprintf(" (%d hops)", e.Hops)
	}
	return s
}

// Observer receives runtime events. See Config.Observer.
type Observer func(Event)

// emit delivers an event to the node's observer, if any: directly on
// the caller's goroutine by default, or through the bounded async sink
// when Config.ObserverBuffer is set. While the health engine runs with
// a flight recorder, every event (bar the high-rate EventInvoke) is
// additionally mirrored into the recorder ring, so a dump carries the
// recent event history even with no observer set.
func (n *Node) emit(e Event) {
	rec := n.tel.flightRec.Load()
	if n.observer == nil && rec == nil {
		return
	}
	e.Node = n.id
	e.Time = time.Now()
	if rec != nil && e.Kind != EventInvoke {
		label := e.Kind.String()
		if e.Outcome != "" {
			label += ":" + e.Outcome
		}
		rec.Record(health.Entry{
			At: e.Time.UnixNano(), Kind: health.EntryEvent,
			Label: label, Node: string(e.Target),
			Values: [4]int64{e.Bytes, int64(e.Hops), int64(e.Wave), int64(len(e.Objects))},
		})
	}
	if n.observer == nil {
		return
	}
	if n.events != nil {
		n.events.emit(e)
		return
	}
	n.observer(e)
}

// eventSink decouples event delivery from the hot path: emit enqueues
// into a bounded channel (dropping, and counting the drop, when the
// observer cannot keep up) and one goroutine drains the queue into the
// observer in order. See Config.ObserverBuffer.
type eventSink struct {
	fn   Observer
	ch   chan Event
	done chan struct{}

	mu      sync.RWMutex // guards closed against concurrent emits
	closed  bool
	dropped atomic.Int64
	// lastNotify is the UnixNano of the last synchronous
	// EventObserverOverflow, the ≤ once-per-minute rate limit.
	lastNotify atomic.Int64
}

func newEventSink(fn Observer, buffer int) *eventSink {
	s := &eventSink{fn: fn, ch: make(chan Event, buffer), done: make(chan struct{})}
	go s.run()
	return s
}

func (s *eventSink) run() {
	defer close(s.done)
	for e := range s.ch {
		s.fn(e)
	}
}

// emit enqueues without ever blocking: a full queue (or a closed sink)
// sheds the event and counts it. A shed additionally surfaces as a
// synchronous EventObserverOverflow — delivered on the caller's
// goroutine, bypassing the full queue — at most once per minute, so
// operators learn the observer is losing events without polling
// Stats.
func (s *eventSink) emit(e Event) {
	s.mu.RLock()
	if s.closed {
		s.dropped.Add(1)
		s.mu.RUnlock()
		return
	}
	var notify int64
	select {
	case s.ch <- e:
	default:
		d := s.dropped.Add(1)
		if s.shouldNotify(e.Time.UnixNano()) {
			notify = d
		}
	}
	s.mu.RUnlock()
	if notify > 0 {
		s.fn(Event{
			Kind:    EventObserverOverflow,
			Node:    e.Node,
			Outcome: "overflow",
			Bytes:   notify,
			Time:    e.Time,
		})
	}
}

// shouldNotify claims the once-per-minute overflow-notification slot
// (CAS so concurrent droppers elect exactly one notifier).
func (s *eventSink) shouldNotify(now int64) bool {
	last := s.lastNotify.Load()
	return now-last >= int64(time.Minute) && s.lastNotify.CompareAndSwap(last, now)
}

// close drains the queue into the observer and stops the goroutine.
// Emits arriving after close are counted as dropped.
func (s *eventSink) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.ch)
	<-s.done
}
