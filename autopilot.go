package objmig

// The autopilot is the live runtime's answer to the paper's dynamic
// policies (compare-nodes and compare-and-reinstantiate, §3.3/§4.3).
// Those policies observe *move-request* pressure and only ever run
// when an application opens move-blocks; the autopilot observes raw
// *invocation* pressure via internal/affinity and migrates objects
// towards their heaviest callers on its own, so a deployment whose
// clients never issue migration primitives still converges objects
// onto the nodes that use them.
//
// Every node runs its own autopilot over the objects it currently
// hosts — decisions stay at the object's location, exactly like the
// paper's Fig. 3 run-time support. The scoring mirrors the paper's two
// dynamic strategies:
//
//   - PolicyCompareNodes: migrate towards the leading caller when it
//     strictly dominates every rival pressure source (local serves and
//     the runner-up caller), scaled by a hysteresis factor so two
//     near-equal callers never make the object ping-pong.
//   - PolicyCompareReinstantiate: additionally require the leader to
//     hold a clear majority (strictly more than half) of all observed
//     pressure — the paper's reinstantiation rule.
//
// Per-object cooldowns and a per-tick migration budget bound the churn
// the autopilot may cause; group transfers ride the same migrateGroup
// machinery as every explicit migration, so fixing, placement locks
// and attachment closures keep their semantics.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"objmig/internal/affinity"
	"objmig/internal/core"
	"objmig/internal/placement"
	"objmig/internal/wire"
)

// AutopilotConfig tunes a node's autopilot. The zero value selects the
// documented defaults.
type AutopilotConfig struct {
	// Interval is the scan period. Default 50ms.
	Interval time.Duration
	// Policy selects the scoring rule: PolicyCompareNodes (default)
	// migrates towards a strictly leading caller; to
	// PolicyCompareReinstantiate the leader must also hold a clear
	// majority of all observed pressure. Other kinds are rejected.
	Policy PolicyKind
	// MinTotal is the hotness floor: objects with fewer observed
	// accesses than this (since the last decays) are never considered.
	// Default 16.
	MinTotal int64
	// Hysteresis is how many times the leading caller's pressure must
	// exceed the strongest rival (local serves or the runner-up
	// caller) before a migration is worth its cost. Values below 1
	// are raised to 1 (the leader must still strictly win); zero
	// selects the default 2.
	Hysteresis float64
	// Cooldown is the per-object minimum time between autopilot
	// migrations, the second ping-pong guard. Default 10× Interval.
	Cooldown time.Duration
	// BudgetPerTick caps group migrations issued per scan. Default 4.
	BudgetPerTick int
	// DecayEvery halves the affinity counters every N scans (the
	// counters' half-life is N×Interval). 0 selects the default 8; a
	// negative value disables decay (tests).
	DecayEvery int
	// Alliance is the cooperation context whose attachment closure
	// travels with an elected object, so co-accessed groups move
	// together — the same semantics as MigrateIn. The default
	// NoAlliance walks the global context, exactly like a plain
	// Migrate.
	Alliance AllianceID
}

// withDefaults fills the zero fields.
func (c AutopilotConfig) withDefaults() AutopilotConfig {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.Policy == 0 {
		c.Policy = PolicyCompareNodes
	}
	if c.MinTotal <= 0 {
		c.MinTotal = 16
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 2
	} else if c.Hysteresis < 1 {
		c.Hysteresis = 1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	if c.BudgetPerTick <= 0 {
		c.BudgetPerTick = 4
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = 8
	}
	return c
}

// autopilot is one node's running daemon.
type autopilot struct {
	node *Node
	cfg  AutopilotConfig

	stop chan struct{}
	done chan struct{}

	scans int

	mu       sync.Mutex
	cooldown map[core.OID]time.Time
}

// EnableAutopilot starts the node's affinity tracker and autopilot
// daemon. It fails if the autopilot is already enabled, the node is
// closed, or the config names a policy other than the two dynamic
// comparing strategies.
func (n *Node) EnableAutopilot(cfg AutopilotConfig) error {
	if n.closed.Load() {
		return ErrClosed
	}
	cfg = cfg.withDefaults()
	if cfg.Policy != PolicyCompareNodes && cfg.Policy != PolicyCompareReinstantiate {
		return fmt.Errorf("objmig: autopilot policy must be compare-nodes or compare-reinstantiate, got %v", cfg.Policy)
	}
	n.apMu.Lock()
	defer n.apMu.Unlock()
	// Re-check under the lock: Close's DisableAutopilot also takes
	// apMu, so an enable that observes closed==false here is ordered
	// before Close's shutdown sweep and will be stopped by it.
	if n.closed.Load() {
		return ErrClosed
	}
	if n.ap != nil {
		return fmt.Errorf("objmig: autopilot already enabled on %s", n.id)
	}
	ap := &autopilot{
		node:     n,
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		cooldown: make(map[core.OID]time.Time),
	}
	n.ap = ap
	n.affUsers++
	n.aff.SetEnabled(true)
	n.spawn(ap.run)
	return nil
}

// DisableAutopilot stops the daemon and the affinity tracker. It
// blocks until any in-flight scan (and the migration it may be
// driving) has wound down; the scan's context is cancelled so the wait
// is short. Safe to call when the autopilot is not running.
func (n *Node) DisableAutopilot() {
	n.apMu.Lock()
	ap := n.ap
	n.ap = nil
	if ap != nil {
		// Inside the critical section, so a concurrent re-enable's
		// SetEnabled(true) cannot be overwritten after it installs
		// its daemon. The tracker stays on while the placement daemon
		// still feeds on it.
		n.affUsers--
		if n.affUsers <= 0 {
			n.aff.SetEnabled(false)
		}
	}
	n.apMu.Unlock()
	if ap == nil {
		return
	}
	close(ap.stop)
	<-ap.done
}

// AutopilotEnabled reports whether the autopilot is running.
func (n *Node) AutopilotEnabled() bool {
	n.apMu.Lock()
	defer n.apMu.Unlock()
	return n.ap != nil
}

// run is the daemon loop.
func (a *autopilot) run() {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			a.tick()
		}
	}
}

// tick performs one scan: decay if due, rank hot objects, migrate the
// best candidates within the budget.
func (a *autopilot) tick() {
	n := a.node
	a.scans++
	n.stats.autopilotScans.Add(1)
	if a.cfg.DecayEvery > 0 && a.scans%a.cfg.DecayEvery == 0 {
		n.aff.Decay()
	}
	a.reapCooldowns(time.Now())

	hot := n.aff.Hot(a.cfg.MinTotal)
	if len(hot) == 0 {
		return
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].Total != hot[j].Total {
			return hot[i].Total > hot[j].Total
		}
		return hot[i].Obj.Less(hot[j].Obj)
	})

	// The scan's context dies with the daemon, so Close never waits
	// out a full migration timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	defer cancelOnStop(a.stop, cancel)()

	// With placement enabled the election routes through the engine:
	// group-scored, load-discounted, overload-vetoed. Without it the
	// classic per-object election below runs unchanged.
	pl := n.placementDaemonRef()
	if pl != nil {
		n.stats.placementScans.Add(1)
	}
	visited := make(map[core.OID]bool)

	budget := a.cfg.BudgetPerTick
	for _, h := range hot {
		if budget <= 0 || ctx.Err() != nil {
			return
		}
		if _, hosted := n.store.Hosted(h.Obj); !hosted {
			continue // gossip about an object somebody else hosts
		}
		if pl != nil {
			if h.Obj.Origin == n.id && len(h.Callers) == 0 {
				// Origin-accumulated gossip with no remote pressure at
				// all: nothing to elect (mirrors the classic path).
				continue
			}
			if !visited[h.Obj] && a.electGroup(ctx, pl, h.Obj, visited) {
				budget--
			}
			continue
		}
		target, ok := a.elect(h)
		if !ok {
			continue
		}
		// Cooldown stamps use a fresh clock — a slow migration earlier
		// in the loop must not backdate (and thereby void) them.
		if a.onCooldown(h.Obj, time.Now()) {
			n.stats.autopilotDeferred.Add(1)
			continue
		}
		moved, err := a.migrate(ctx, h.Obj, target)
		if err != nil {
			// Fixed, placed, busy, or the target is unreachable: back
			// off for one cooldown instead of hammering every tick.
			a.setCooldown(h.Obj, time.Now())
			n.stats.autopilotDeferred.Add(1)
			continue
		}
		budget--
		n.stats.autopilotMigrations.Add(1)
		n.stats.autopilotObjectsMoved.Add(int64(len(moved)))
		// migrateGroup already lifted the moved objects' counters out
		// of the tracker (Take) for the origin gossip; only the
		// cooldown stamps are left to write.
		now := time.Now()
		for _, oid := range moved {
			a.setCooldown(oid, now)
		}
		refs := make([]Ref, len(moved))
		for i, oid := range moved {
			refs[i] = Ref{OID: oid}
		}
		n.emit(Event{Kind: EventAutopilot, Obj: Ref{OID: h.Obj}, Target: target,
			Outcome: "migrate", Objects: refs})
	}
}

// electGroup is the engine-backed election: the candidate's attachment
// closure is resolved first, its affinity aggregated per caller node,
// and the placement engine scores the closure as a unit against the
// cluster load view — so one hot member cannot drag a group whose
// combined affinity points elsewhere, and an overloaded target is
// vetoed before a single pause is issued. Every scored member is
// marked visited so a tick never re-scores the same closure through
// another hot member. Reports whether a migration was issued.
func (a *autopilot) electGroup(ctx context.Context, d *placementDaemon, root core.OID, visited map[core.OID]bool) bool {
	n := a.node
	if a.onCooldown(root, time.Now()) {
		n.stats.autopilotDeferred.Add(1)
		return false
	}
	members, err := n.closureOf(ctx, root, a.cfg.Alliance)
	if err != nil {
		a.setCooldown(root, time.Now())
		n.stats.autopilotDeferred.Add(1)
		return false
	}
	for oid := range members {
		visited[oid] = true
	}
	opt := d.cfg.engineOptions()
	opt.Hysteresis = a.cfg.Hysteresis
	opt.RequireMajority = a.cfg.Policy == PolicyCompareReinstantiate
	dec, ok := placement.Score(n.groupAffinity(members), d.view, opt)
	if !ok {
		// Declined: re-deriving the closure every tick for a group
		// that keeps scoring "stay" is wasted (possibly remote) work.
		// Back off for a fraction of the full cooldown so fresh
		// pressure can still flip the verdict quickly.
		short := a.cfg.Cooldown / 4
		if short < a.cfg.Interval {
			short = a.cfg.Interval
		}
		a.setCooldownUntil(root, time.Now().Add(short))
		return false
	}
	moved, err := n.migrateClosureSoft(ctx, root, members, dec.Target)
	if err != nil {
		a.setCooldown(root, time.Now())
		n.stats.autopilotDeferred.Add(1)
		return false
	}
	n.stats.autopilotMigrations.Add(1)
	n.stats.autopilotObjectsMoved.Add(int64(len(moved)))
	n.stats.placementMigrations.Add(1)
	n.stats.placementObjectsMoved.Add(int64(len(moved)))
	now := time.Now()
	refs := make([]Ref, len(moved))
	for i, oid := range moved {
		a.setCooldown(oid, now)
		refs[i] = Ref{OID: oid}
	}
	n.emit(Event{Kind: EventAutopilot, Obj: Ref{OID: root}, Target: dec.Target,
		Outcome: "migrate", Objects: refs})
	n.emit(Event{Kind: EventPlacement, Obj: Ref{OID: root}, Target: dec.Target,
		Outcome: "migrate", Objects: refs})
	return true
}

// elect applies the configured comparing strategy to one object's
// observed pressure and returns the migration target, if any.
func (a *autopilot) elect(h affinity.ObjLoad) (NodeID, bool) {
	if len(h.Callers) == 0 {
		return "", false // only local pressure: already optimally placed
	}
	leader := h.Callers[0]
	rival := h.Local
	if len(h.Callers) > 1 && h.Callers[1].Count > rival {
		rival = h.Callers[1].Count
	}
	// The leader must strictly dominate every rival pressure source,
	// scaled by the hysteresis factor (compare-nodes, §3.3: "keep
	// objects at those nodes from where the most requests are issued").
	if leader.Count <= rival || float64(leader.Count) < a.cfg.Hysteresis*float64(rival) {
		return "", false
	}
	if a.cfg.Policy == PolicyCompareReinstantiate {
		// Reinstantiation's clear-majority rule (§4.3): strictly more
		// than half of all observed pressure.
		if 2*leader.Count <= h.Total {
			return "", false
		}
	}
	return leader.Node, true
}

// onCooldown reports whether the object migrated too recently.
func (a *autopilot) onCooldown(obj core.OID, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	until, ok := a.cooldown[obj]
	if ok && now.Before(until) {
		return true
	}
	if ok {
		delete(a.cooldown, obj)
	}
	return false
}

// setCooldown stamps the object's next earliest migration.
func (a *autopilot) setCooldown(obj core.OID, now time.Time) {
	a.setCooldownUntil(obj, now.Add(a.cfg.Cooldown))
}

// setCooldownUntil stamps an explicit deadline (the engine's short
// declined-score back-off uses a fraction of the full cooldown).
func (a *autopilot) setCooldownUntil(obj core.OID, until time.Time) {
	a.mu.Lock()
	a.cooldown[obj] = until
	a.mu.Unlock()
}

// reapCooldowns drops expired stamps. Objects that migrated away are
// never looked up again (the hosted check skips them before the
// cooldown), so without this sweep the map would grow by one entry per
// object the autopilot ever moved.
func (a *autopilot) reapCooldowns(now time.Time) {
	a.mu.Lock()
	for obj, until := range a.cooldown {
		if !now.Before(until) {
			delete(a.cooldown, obj)
		}
	}
	a.mu.Unlock()
}

// migrate drives one autopilot group migration through the standard
// machinery: the object's attachment closure (in the configured
// alliance context) travels with it, exactly as an explicit MigrateIn
// would move it. Fixed or placed members veto the whole transfer — the
// autopilot is an optimiser, never an override.
func (a *autopilot) migrate(ctx context.Context, obj core.OID, target NodeID) ([]core.OID, error) {
	n := a.node
	members, err := n.closureOf(ctx, obj, a.cfg.Alliance)
	if err != nil {
		return nil, err
	}
	admit := func(s *wire.Snapshot) error {
		if s.Pol.Lock.Held {
			return wire.Errorf(wire.CodeDenied, "autopilot: member %s is placed", s.ID)
		}
		if s.Pol.Fixed {
			return wire.Errorf(wire.CodeFixed, "autopilot: member %s is fixed", s.ID)
		}
		return nil
	}
	return n.migrateGroup(ctx, members, target, obj, admit, nil, n.nextTrace())
}

// AffinityCaller is one remote caller's observed pressure in
// Node.Affinity's report.
type AffinityCaller struct {
	Node  NodeID // the calling node
	Count int64  // decayed invocation count attributed to it
}

// ObjectAffinity is one object's observed access pressure at this
// node: local serves plus remote callers in descending order.
type ObjectAffinity struct {
	Obj     Ref              // the observed object
	Local   int64            // serves for local callers
	Total   int64            // local plus all remote pressure
	Callers []AffinityCaller // remote callers, heaviest first
}

// Affinity reports the node's current affinity observations (objects
// with any recorded pressure), for operators and tests. Empty unless
// the autopilot is (or was) enabled.
func (n *Node) Affinity() []ObjectAffinity {
	loads := n.aff.Hot(1)
	out := make([]ObjectAffinity, len(loads))
	for i, l := range loads {
		oa := ObjectAffinity{Obj: Ref{OID: l.Obj}, Local: l.Local, Total: l.Total}
		oa.Callers = make([]AffinityCaller, len(l.Callers))
		for j, c := range l.Callers {
			oa.Callers[j] = AffinityCaller{Node: c.Node, Count: c.Count}
		}
		out[i] = oa
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Obj.OID.Less(out[j].Obj.OID)
	})
	return out
}

// mergeAffinityGossip folds HomeUpdate-piggy-backed observations into
// the local tracker.
func (n *Node) mergeAffinityGossip(obs []wire.AffinityObs) {
	if len(obs) == 0 || !n.aff.Enabled() {
		return
	}
	conv := make([]affinity.Obs, len(obs))
	for i, o := range obs {
		conv[i] = affinity.Obs{Obj: o.Obj, From: o.From, Count: o.Count}
	}
	n.aff.Merge(conv)
}
