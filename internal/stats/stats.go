// Package stats provides the statistics machinery shared by the
// simulation harness and the live runtime: running moments (Welford),
// batch-means confidence intervals and the paper's stopping rule
// (relative confidence-interval half-width of 1% at probability
// p = 0.99), plus the EWMA rate smoother behind the load-gossip
// invoke-rate samples.
package stats

import "math"

// Z99 is the two-sided standard-normal quantile for p = 0.99, i.e. the z
// value such that P(|Z| <= z) = 0.99. The paper runs every simulation
// "as long as a confidence interval of 1% was reached with probability
// p=0.99"; with batch means and a normal approximation this is the
// multiplier for the half-width.
const Z99 = 2.5758293035489004

// Welford accumulates count, mean and variance of a stream of samples in
// a single pass using Welford's numerically stable recurrence. The zero
// value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or 0 if no samples have been added.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance, or 0 for fewer than two
// samples.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge folds another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Estimator implements the batch-means method: consecutive samples are
// grouped into batches of BatchSize; the batch means are treated as
// (approximately) independent observations, from which a confidence
// interval on the grand mean is computed. This is the standard remedy
// for the autocorrelation of steady-state simulation output.
//
// The zero value is not ready to use; construct with NewEstimator.
type Estimator struct {
	batchSize int
	curSum    float64
	curN      int
	batches   Welford
	all       Welford
}

// NewEstimator returns an Estimator with the given batch size. Batch
// sizes below 1 are clamped to 1.
func NewEstimator(batchSize int) *Estimator {
	if batchSize < 1 {
		batchSize = 1
	}
	return &Estimator{batchSize: batchSize}
}

// Add folds one sample into the estimator.
func (e *Estimator) Add(x float64) {
	e.all.Add(x)
	e.curSum += x
	e.curN++
	if e.curN == e.batchSize {
		e.batches.Add(e.curSum / float64(e.curN))
		e.curSum, e.curN = 0, 0
	}
}

// N returns the total number of samples.
func (e *Estimator) N() int64 { return e.all.N() }

// Mean returns the grand sample mean over all samples (including those
// of the incomplete current batch).
func (e *Estimator) Mean() float64 { return e.all.Mean() }

// Batches returns the number of complete batches.
func (e *Estimator) Batches() int64 { return e.batches.N() }

// RelHalfWidth returns the relative confidence-interval half-width
// z*s/(sqrt(nb)*|mean|) over the batch means. It returns +Inf when
// fewer than two batches are complete or the mean is zero.
func (e *Estimator) RelHalfWidth(z float64) float64 {
	nb := e.batches.N()
	m := e.batches.Mean()
	if nb < 2 || m == 0 {
		return math.Inf(1)
	}
	return z * e.batches.Std() / (math.Sqrt(float64(nb)) * math.Abs(m))
}

// Converged reports whether the estimator satisfies the stopping rule: a
// relative half-width of at most rel at confidence multiplier z with at
// least minBatches complete batches.
func (e *Estimator) Converged(z, rel float64, minBatches int64) bool {
	if e.batches.N() < minBatches {
		return false
	}
	return e.RelHalfWidth(z) <= rel
}

// Reset discards all accumulated state, keeping the batch size. It is
// used to delete the warm-up transient.
func (e *Estimator) Reset() {
	e.curSum, e.curN = 0, 0
	e.batches = Welford{}
	e.all = Welford{}
}

// EWMA is an exponentially weighted moving average — the smoother
// behind a node's gossiped invoke-rate sample. The first observation
// seeds the average; each later one folds in with weight alpha, so a
// traffic burst raises the reported rate quickly while a lull decays
// it geometrically instead of zeroing it. Not safe for concurrent use;
// the owning sampler serialises observations.
type EWMA struct {
	alpha  float64
	value  float64
	seeded bool
}

// DefaultEWMAAlpha is the default smoothing factor.
const DefaultEWMAAlpha = 0.3

// NewEWMA returns a smoother with the given factor in (0, 1]; values
// outside that range select DefaultEWMAAlpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in and returns the updated average.
func (e *EWMA) Observe(x float64) float64 {
	if !e.seeded {
		e.value, e.seeded = x, true
		return x
	}
	e.value += e.alpha * (x - e.value)
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }
