package objmig

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"objmig/internal/affinity"
	"objmig/internal/core"
)

// skewResult is one skewed-workload run's outcome.
type skewResult struct {
	atHot           int   // objects hosted at the dominant caller afterwards
	objects         int   // total objects
	hotRemoteCalls  int64 // RemoteCallsSent by the dominant caller
	autopilotEvents int64 // EventAutopilot emissions across the cluster
}

// runSkewedWorkload drives the acceptance workload: three nodes, ten
// objects created on n0, and a 90/10 caller skew between n1 (hot) and
// n2 (cold). The exact same call sequence runs with the autopilot on
// or off so the two runs' RemoteCallsSent are comparable.
func runSkewedWorkload(t *testing.T, autopilotOn bool) skewResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	var apEvents atomic.Int64
	cfg := Config{Observer: func(e Event) {
		if e.Kind == EventAutopilot {
			apEvents.Add(1)
		}
	}}
	nodes := testCluster(t, 3, cfg)
	if autopilotOn {
		for _, n := range nodes {
			err := n.EnableAutopilot(AutopilotConfig{
				Interval:      5 * time.Millisecond,
				MinTotal:      12,
				Hysteresis:    1.3,
				Cooldown:      250 * time.Millisecond,
				BudgetPerTick: 8,
				DecayEvery:    -1, // keep counters warm for the whole run
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	const (
		objects = 10
		rounds  = 60
	)
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, nodes[0])
	}
	hot, cold := nodes[1], nodes[2]
	for r := 0; r < rounds; r++ {
		for _, ref := range refs {
			for i := 0; i < 9; i++ {
				if _, err := Call[int, int](ctx, hot, ref, "Add", 1); err != nil {
					t.Fatalf("hot call: %v", err)
				}
			}
			if _, err := Call[int, int](ctx, cold, ref, "Add", 1); err != nil {
				t.Fatalf("cold call: %v", err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	countAtHot := func() int {
		at := 0
		for _, ref := range refs {
			loc, err := nodes[0].Locate(ctx, ref)
			if err != nil {
				t.Fatalf("locate: %v", err)
			}
			if loc == hot.ID() {
				at++
			}
		}
		return at
	}
	atHot := countAtHot()
	if autopilotOn {
		// The counters stay warm (no decay), so stragglers keep
		// migrating after the workload; give them a settling window.
		deadline := time.Now().Add(20 * time.Second)
		for atHot < (objects*8+9)/10 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			atHot = countAtHot()
		}
	}
	return skewResult{
		atHot:           atHot,
		objects:         objects,
		hotRemoteCalls:  hot.Stats().RemoteCallsSent,
		autopilotEvents: apEvents.Load(),
	}
}

// TestAutopilotConvergesSkewedWorkload is the subsystem's acceptance
// test: under a 90/10 caller skew, ≥80% of the hot objects must end up
// hosted on the dominant caller's node, and that node's RemoteCallsSent
// must drop versus the identical workload without the autopilot.
func TestAutopilotConvergesSkewedWorkload(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skewed-workload convergence test is slow")
	}
	off := runSkewedWorkload(t, false)
	on := runSkewedWorkload(t, true)

	if off.atHot != 0 {
		t.Fatalf("autopilot-off run migrated %d objects (nothing should move)", off.atHot)
	}
	if want := (on.objects*8 + 9) / 10; on.atHot < want {
		t.Fatalf("autopilot converged %d/%d objects onto the hot node, want ≥ %d",
			on.atHot, on.objects, want)
	}
	if on.autopilotEvents == 0 {
		t.Fatal("no EventAutopilot was emitted")
	}
	// The hot node's calls became local serves after convergence; its
	// remote-call volume must drop decisively (the acceptance bound is
	// any drop; assert a 2x margin so regressions are loud).
	if on.hotRemoteCalls*2 > off.hotRemoteCalls {
		t.Fatalf("RemoteCallsSent with autopilot = %d, without = %d; want < half",
			on.hotRemoteCalls, off.hotRemoteCalls)
	}
}

// TestAutopilotNoPingPongBetweenEqualCallers: two callers with exactly
// equal pressure must never trigger a migration — the hysteresis (and
// the strict-domination rule) keeps the object put.
func TestAutopilotNoPingPongBetweenEqualCallers(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	for _, n := range nodes {
		err := n.EnableAutopilot(AutopilotConfig{
			Interval:      5 * time.Millisecond,
			MinTotal:      10,
			Hysteresis:    1.5,
			Cooldown:      50 * time.Millisecond,
			BudgetPerTick: 8,
			DecayEvery:    -1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ref := mustCreate(t, nodes[0])
	for r := 0; r < 40; r++ {
		for i := 0; i < 5; i++ {
			if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil {
				t.Fatal(err)
			}
			if _, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	var migrations int64
	for _, n := range nodes {
		migrations += n.Stats().AutopilotMigrations
	}
	if migrations != 0 {
		t.Fatalf("equally hot callers caused %d autopilot migrations", migrations)
	}
	if at, err := nodes[0].Locate(ctx, ref); err != nil || at != "n0" {
		t.Fatalf("object moved to %v (%v), want n0", at, err)
	}
}

// TestAutopilotElect exercises the scoring rules directly: hysteresis,
// strict domination, and reinstantiation's clear-majority requirement.
func TestAutopilotElect(t *testing.T) {
	t.Parallel()
	load := func(local int64, callers ...affinity.CallerLoad) affinity.ObjLoad {
		l := affinity.ObjLoad{Obj: core.OID{Origin: "n0", Seq: 1}, Local: local, Callers: callers, Total: local}
		for _, c := range callers {
			l.Total += c.Count
		}
		return l
	}
	compare := &autopilot{cfg: AutopilotConfig{Policy: PolicyCompareNodes, Hysteresis: 2}.withDefaults()}
	reinst := &autopilot{cfg: AutopilotConfig{Policy: PolicyCompareReinstantiate, Hysteresis: 2}.withDefaults()}

	cases := []struct {
		name string
		a    *autopilot
		load affinity.ObjLoad
		want NodeID
		ok   bool
	}{
		{"no remote callers", compare, load(100), "", false},
		{"sole caller dominates", compare, load(0, affinity.CallerLoad{Node: "n1", Count: 10}), "n1", true},
		{"local rival under hysteresis", compare, load(6, affinity.CallerLoad{Node: "n1", Count: 10}), "", false},
		{"local rival beaten", compare, load(6, affinity.CallerLoad{Node: "n1", Count: 13}), "n1", true},
		{"runner-up under hysteresis", compare,
			load(0, affinity.CallerLoad{Node: "n1", Count: 10}, affinity.CallerLoad{Node: "n2", Count: 9}), "", false},
		{"equal callers never move", compare,
			load(0, affinity.CallerLoad{Node: "n1", Count: 10}, affinity.CallerLoad{Node: "n2", Count: 10}), "", false},
		{"reinstantiate with majority", reinst,
			load(0, affinity.CallerLoad{Node: "n1", Count: 12}, affinity.CallerLoad{Node: "n2", Count: 5},
				affinity.CallerLoad{Node: "n3", Count: 5}), "n1", true},
		{"reinstantiate without majority", reinst,
			load(0, affinity.CallerLoad{Node: "n1", Count: 12}, affinity.CallerLoad{Node: "n2", Count: 5},
				affinity.CallerLoad{Node: "n3", Count: 5}, affinity.CallerLoad{Node: "n4", Count: 3}), "", false},
	}
	for _, tc := range cases {
		got, ok := tc.a.elect(tc.load)
		if got != tc.want || ok != tc.ok {
			t.Errorf("%s: elect = %q, %v; want %q, %v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
}

// TestAutopilotCooldown checks the per-object cooldown bookkeeping.
func TestAutopilotCooldown(t *testing.T) {
	t.Parallel()
	a := &autopilot{
		cfg:      AutopilotConfig{Cooldown: time.Hour}.withDefaults(),
		cooldown: make(map[core.OID]time.Time),
	}
	obj := core.OID{Origin: "n0", Seq: 1}
	now := time.Now()
	if a.onCooldown(obj, now) {
		t.Fatal("fresh object on cooldown")
	}
	a.setCooldown(obj, now)
	if !a.onCooldown(obj, now.Add(30*time.Minute)) {
		t.Fatal("cooldown expired too early")
	}
	if a.onCooldown(obj, now.Add(2*time.Hour)) {
		t.Fatal("cooldown never expired")
	}
	a.mu.Lock()
	_, still := a.cooldown[obj]
	a.mu.Unlock()
	if still {
		t.Fatal("expired cooldown entry not reaped")
	}
}

// TestAutopilotRespectsFixedObjects: a fixed object is never moved (the
// attempt counts as deferred), and migrates promptly once unfixed.
func TestAutopilotRespectsFixedObjects(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 2, Config{})
	err := nodes[0].EnableAutopilot(AutopilotConfig{
		Interval:      2 * time.Millisecond,
		MinTotal:      4,
		Hysteresis:    1,
		Cooldown:      10 * time.Millisecond,
		BudgetPerTick: 4,
		DecayEvery:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := mustCreate(t, nodes[0])
	if err := nodes[0].Fix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := Call[int, int](ctx, nodes[1], ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for nodes[0].Stats().AutopilotDeferred == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if nodes[0].Stats().AutopilotDeferred == 0 {
		t.Fatal("autopilot never attempted (and deferred on) the fixed object")
	}
	if nodes[0].Stats().AutopilotMigrations != 0 {
		t.Fatal("autopilot migrated a fixed object")
	}
	if at, err := nodes[0].Locate(ctx, ref); err != nil || at != "n0" {
		t.Fatalf("fixed object at %v (%v), want n0", at, err)
	}

	// Unfixed, the warm counters move it to its caller.
	if err := nodes[0].Unfix(ctx, ref); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if at, _ := nodes[0].Locate(ctx, ref); at == "n1" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("unfixed object never migrated to its caller")
}

// TestAutopilotShutdownDuringInFlightMigration: closing a node whose
// autopilot is thrashing objects around (deliberately pathological
// config: no hysteresis margin, near-zero cooldown, two competing
// callers) must complete promptly — the in-flight scan is cancelled,
// never waited out.
func TestAutopilotShutdownDuringInFlightMigration(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	nodes := testCluster(t, 3, Config{})
	for _, n := range nodes {
		err := n.EnableAutopilot(AutopilotConfig{
			Interval:      time.Millisecond,
			MinTotal:      2,
			Hysteresis:    1,
			Cooldown:      time.Millisecond,
			BudgetPerTick: 16,
			DecayEvery:    -1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	const objects = 16
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, nodes[0])
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			caller := nodes[1+w%2]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once n0 goes down mid-call.
				_, _ = Call[int, int](ctx, caller, refs[(i+w)%objects], "Add", 1)
			}
		}(w)
	}
	time.Sleep(100 * time.Millisecond) // let migrations churn

	closed := make(chan error, 1)
	go func() { closed <- nodes[0].Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Close hung while an autopilot migration was in flight")
	}
	close(stop)
	wg.Wait()
}

// TestAutopilotEnableValidation covers the lifecycle API surface.
func TestAutopilotEnableValidation(t *testing.T) {
	t.Parallel()
	nodes := testCluster(t, 1, Config{})
	n := nodes[0]

	if err := n.EnableAutopilot(AutopilotConfig{Policy: PolicyPlacement}); err == nil {
		t.Fatal("placement policy accepted")
	}
	if err := n.EnableAutopilot(AutopilotConfig{Policy: PolicySedentary}); err == nil {
		t.Fatal("sedentary policy accepted")
	}
	if err := n.EnableAutopilot(AutopilotConfig{}); err != nil {
		t.Fatal(err)
	}
	if !n.AutopilotEnabled() {
		t.Fatal("autopilot not reported enabled")
	}
	if err := n.EnableAutopilot(AutopilotConfig{}); err == nil ||
		!strings.Contains(err.Error(), "already enabled") {
		t.Fatalf("double enable: %v", err)
	}
	n.DisableAutopilot()
	if n.AutopilotEnabled() {
		t.Fatal("autopilot still enabled after disable")
	}
	n.DisableAutopilot() // idempotent
	if err := n.EnableAutopilot(AutopilotConfig{Policy: PolicyCompareReinstantiate}); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if n.AutopilotEnabled() {
		t.Fatal("autopilot survived Close")
	}
	if err := n.EnableAutopilot(AutopilotConfig{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enable after close: %v", err)
	}
}

// TestAffinityGossipReachesOriginTarget: when an object migrates to
// its own origin (the autopilot's most common outcome — the object
// converges onto its creator), the departing host's observations must
// still arrive as a gossip-only advisory, warming the new host's
// tracker.
func TestAffinityGossipReachesOriginTarget(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	// Trackers on, daemons effectively dormant (huge interval).
	for _, n := range nodes {
		if err := n.EnableAutopilot(AutopilotConfig{Interval: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	ref := mustCreate(t, nodes[2]) // origin n2
	if err := nodes[2].Migrate(ctx, ref, "n1"); err != nil {
		t.Fatal(err)
	}
	// Pressure on the n1-hosted object from its origin and a bystander.
	for i := 0; i < 6; i++ {
		if _, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := Call[int, int](ctx, nodes[0], ref, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	// Back home: target == origin, so the home update is redundant but
	// the observations must still travel.
	if err := nodes[1].Migrate(ctx, ref, "n2"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		l := nodes[2].Affinity()
		if len(l) > 0 && l[0].Obj == ref && l[0].Local >= 6 {
			// n2's own pressure arrived as local serves; the
			// bystander's as a remote caller.
			if len(l[0].Callers) == 0 || l[0].Callers[0].Node != "n0" || l[0].Callers[0].Count < 2 {
				t.Fatalf("bystander pressure lost in gossip: %+v", l[0])
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("origin-target never received the affinity gossip: %+v", nodes[2].Affinity())
}

// TestHomeUpdateBatchingCoalesces: several quick migrations towards the
// same destination must collapse into fewer HomeUpdate RPCs, the origin
// must still learn the new home, and the coordinator's affinity
// observations must arrive as gossip.
func TestHomeUpdateBatchingCoalesces(t *testing.T) {
	t.Parallel()
	ctx := ctxShort(t)
	nodes := testCluster(t, 3, Config{})
	// Trackers on (huge interval: the daemons never actually scan) so
	// n1 has observations to gossip and n0 merges what it receives.
	for _, n := range nodes[:2] {
		if err := n.EnableAutopilot(AutopilotConfig{Interval: time.Hour}); err != nil {
			t.Fatal(err)
		}
	}
	// Widen n1's batch window so all migrations coalesce deterministically.
	nodes[1].homeBatch.mu.Lock()
	nodes[1].homeBatch.maxDelay = 200 * time.Millisecond
	nodes[1].homeBatch.mu.Unlock()

	const objects = 6
	refs := make([]Ref, objects)
	for i := range refs {
		refs[i] = mustCreate(t, nodes[0])
		if err := nodes[0].Migrate(ctx, refs[i], "n1"); err != nil {
			t.Fatal(err)
		}
	}
	// Give n1's tracker remote pressure to gossip about.
	for _, ref := range refs {
		for i := 0; i < 4; i++ {
			if _, err := Call[int, int](ctx, nodes[2], ref, "Add", 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// n1 → n2: origin n0 is neither coordinator nor target, so each
	// migration queues one advisory for n0.
	for _, ref := range refs {
		if err := nodes[1].Migrate(ctx, ref, "n2"); err != nil {
			t.Fatal(err)
		}
	}
	st := nodes[1].Stats()
	if st.HomeUpdatesQueued != objects {
		t.Fatalf("HomeUpdatesQueued = %d, want %d", st.HomeUpdatesQueued, objects)
	}

	// The batch flushes within the widened window; the origin then
	// knows the new home and holds the gossiped affinity.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if at, ok := nodes[0].store.Home(refs[objects-1].OID); ok && at == "n2" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, ref := range refs {
		if at, ok := nodes[0].store.Home(ref.OID); !ok || at != "n2" {
			t.Fatalf("origin home for %v = %v, %v; want n2", ref, at, ok)
		}
	}
	st = nodes[1].Stats()
	if st.HomeUpdateBatches == 0 || st.HomeUpdateBatches >= st.HomeUpdatesQueued {
		t.Fatalf("HomeUpdateBatches = %d for %d queued updates; want 1 ≤ batches < queued",
			st.HomeUpdateBatches, st.HomeUpdatesQueued)
	}
	// Gossip: n0's tracker learned that n2 uses these objects.
	byObj := make(map[Ref]ObjectAffinity)
	for _, oa := range nodes[0].Affinity() {
		byObj[oa.Obj] = oa
	}
	for _, ref := range refs {
		oa, ok := byObj[ref]
		if !ok || len(oa.Callers) == 0 || oa.Callers[0].Node != "n2" || oa.Callers[0].Count < 4 {
			t.Fatalf("origin affinity for %v = %+v (gossip lost)", ref, oa)
		}
	}
}
