package objmig

import (
	"context"
	"fmt"

	"objmig/internal/core"
	"objmig/internal/store"
	"objmig/internal/wire"
)

// Fix makes the object sedentary at its current node: every subsequent
// move- and migrate-request is denied until Unfix (the fix() primitive
// of Section 2.2).
func (n *Node) Fix(ctx context.Context, ref Ref) error {
	return n.fixRequest(ctx, ref.OID, true)
}

// Unfix clears the fixed flag.
func (n *Node) Unfix(ctx context.Context, ref Ref) error {
	return n.fixRequest(ctx, ref.OID, false)
}

// Refix moves a fixed (or unfixed) object to a new node and fixes it
// there — the refix() primitive.
func (n *Node) Refix(ctx context.Context, ref Ref, target NodeID) error {
	_, err := n.migrateRequest(ctx, &wire.MigrateReq{
		Obj: ref.OID, Target: target, Alliance: NoAlliance, Fix: true,
	})
	return err
}

// IsFixed reports whether the object is currently fixed. The flag
// travels with the object's policy state, so the query chases the
// object to its current host.
func (n *Node) IsFixed(ctx context.Context, ref Ref) (bool, error) {
	oid := ref.OID
	req := &wire.FixReq{Obj: oid, Query: true}
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			resp, err := n.handleFix(req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			if err != nil {
				return false, fromRemote(err)
			}
			return resp.Fixed, nil
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return false, fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.FixResp
		c.hop()
		err := n.call(ctx, target, wire.KFix, req, &resp)
		if err == nil {
			return resp.Fixed, nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return false, fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return false, fmt.Errorf("%w: %s (fixed?)", ErrUnreachable, oid)
}

// fixRequest chases the object and flips its fixed flag at the host.
func (n *Node) fixRequest(ctx context.Context, oid core.OID, fix bool) error {
	req := &wire.FixReq{Obj: oid, Fix: fix}
	c := n.newChase(oid)
	defer c.end()
	for c.next(ctx) {
		if _, ok := n.hostedRecord(oid); ok {
			_, err := n.handleFix(req)
			if to, moved := movedTo(err); moved {
				n.store.Learn(oid, to)
				continue
			}
			return fromRemote(err)
		}
		target := n.store.Hint(oid)
		if target == n.id {
			if n.selfHintRetry(oid) {
				continue // an arrival raced the two lookups
			}
			return fmt.Errorf("%w: %s", ErrNotFound, oid)
		}
		var resp wire.FixResp
		c.hop()
		err := n.call(ctx, target, wire.KFix, req, &resp)
		if err == nil {
			return nil
		}
		if to, moved := movedTo(err); moved {
			n.store.Learn(oid, to)
			continue
		}
		if isCode(err, wire.CodeNotFound) && target != oid.Origin {
			n.store.InvalidateAt(oid, target)
			continue
		}
		return fromRemote(err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: %s (fix)", ErrUnreachable, oid)
}

// handleFix serves fix/unfix and the fixed-flag query.
func (n *Node) handleFix(req *wire.FixReq) (*wire.FixResp, error) {
	rec, ok := n.record(req.Obj)
	if !ok {
		return nil, n.whereabouts(req.Obj)
	}
	rec.Mu.Lock()
	defer rec.Mu.Unlock()
	if rec.Status == store.StatusGone {
		return nil, &wire.RemoteError{Code: wire.CodeMoved, Msg: req.Obj.String(), To: rec.MovedTo}
	}
	if req.Query {
		return &wire.FixResp{Fixed: rec.Pol.Fixed}, nil
	}
	rec.Pol.Fixed = req.Fix
	outcome := "unfixed"
	if req.Fix {
		outcome = "fixed"
	}
	n.emit(Event{Kind: EventFix, Obj: Ref{OID: req.Obj}, Outcome: outcome})
	return &wire.FixResp{Fixed: rec.Pol.Fixed}, nil
}
