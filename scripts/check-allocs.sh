#!/usr/bin/env bash
# check-allocs.sh — alloc-regression guard for the wire codec.
#
# Runs BenchmarkRuntimeCodec with -benchmem and fails if any
# sub-benchmark reports more allocs/op than its ceiling in
# scripts/alloc-budget.txt. The fast-path budgets are exact (their
# allocation counts are deterministic — the append variants allocate
# only decode output); the gob baselines get headroom for stdlib
# drift. Lowering a number after an optimisation is encouraged;
# raising one is a reviewed decision.
#
# Run from the repository root: ./scripts/check-allocs.sh
set -u
cd "$(dirname "$0")/.."

budget_file=scripts/alloc-budget.txt
out=$(go test -run '^$' -bench 'BenchmarkRuntimeCodec' -benchmem -benchtime 200x . 2>&1)
status=$?
echo "$out"
if [ "$status" -ne 0 ]; then
  echo "alloc check FAILED (benchmark did not run)"
  exit 1
fi

fail=0
while read -r name budget; do
  case "$name" in '' | '#'*) continue ;; esac
  # Benchmark lines append a -GOMAXPROCS suffix to the name; allocs/op
  # is the value immediately preceding the "allocs/op" unit column.
  actual=$(echo "$out" | awk -v n="$name" '
    $1 ~ "^"n"(-[0-9]+)?$" { for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1) }')
  if [ -z "$actual" ]; then
    echo "ALLOC GUARD: benchmark $name missing from output"
    fail=1
    continue
  fi
  if [ "$actual" -gt "$budget" ]; then
    echo "ALLOC REGRESSION: $name reports $actual allocs/op, budget is $budget"
    fail=1
  fi
done <"$budget_file"

if [ "$fail" -ne 0 ]; then
  echo "alloc check FAILED"
  exit 1
fi
echo "alloc check OK"
